#include "compiler/parser.hh"

#include <unordered_map>

#include "util/logging.hh"

namespace rissp::minic
{

namespace
{

/** Binary operator precedence (higher binds tighter). */
int
precOf(Tok t)
{
    switch (t) {
      case Tok::Star:
      case Tok::Slash:
      case Tok::Percent: return 10;
      case Tok::Plus:
      case Tok::Minus: return 9;
      case Tok::Shl:
      case Tok::Shr: return 8;
      case Tok::Lt:
      case Tok::Gt:
      case Tok::Le:
      case Tok::Ge: return 7;
      case Tok::EqEq:
      case Tok::NotEq: return 6;
      case Tok::Amp: return 5;
      case Tok::Caret: return 4;
      case Tok::Pipe: return 3;
      case Tok::AndAnd: return 2;
      case Tok::OrOr: return 1;
      default: return 0;
    }
}

/** Compound-assignment token -> underlying binary operator. */
Tok
compoundBase(Tok t)
{
    switch (t) {
      case Tok::PlusAssign: return Tok::Plus;
      case Tok::MinusAssign: return Tok::Minus;
      case Tok::StarAssign: return Tok::Star;
      case Tok::SlashAssign: return Tok::Slash;
      case Tok::PercentAssign: return Tok::Percent;
      case Tok::AmpAssign: return Tok::Amp;
      case Tok::PipeAssign: return Tok::Pipe;
      case Tok::CaretAssign: return Tok::Caret;
      case Tok::ShlAssign: return Tok::Shl;
      case Tok::ShrAssign: return Tok::Shr;
      default: return Tok::End;
    }
}

class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens)
        : toks(std::move(tokens))
    {
        scopes.emplace_back(); // global scope
    }

    TranslationUnit
    run()
    {
        while (!at(Tok::End))
            parseTopLevel();
        return std::move(unit);
    }

  private:
    // ---- token stream ----

    const Token &peek(size_t ahead = 0) const
    {
        size_t i = pos + ahead;
        return i < toks.size() ? toks[i] : toks.back();
    }

    bool at(Tok t) const { return peek().is(t); }

    const Token &
    advance()
    {
        const Token &t = toks[pos];
        if (pos + 1 < toks.size())
            ++pos;
        return t;
    }

    bool
    accept(Tok t)
    {
        if (at(t)) {
            advance();
            return true;
        }
        return false;
    }

    const Token &
    expect(Tok t)
    {
        if (!at(t))
            throw CompileError(peek().line, strFormat(
                "expected %s, got %s", tokName(t).c_str(),
                tokName(peek().kind).c_str()));
        return advance();
    }

    [[noreturn]] void
    errorHere(const std::string &msg) const
    {
        throw CompileError(peek().line, msg);
    }

    // ---- scopes & symbols ----

    Symbol *
    lookup(const std::string &name) const
    {
        for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
            auto f = it->find(name);
            if (f != it->end())
                return f->second;
        }
        return nullptr;
    }

    Symbol *
    declare(const std::string &name, SymKind kind, const Type &type,
            int line)
    {
        auto &scope = scopes.back();
        if (scope.count(name))
            throw CompileError(line, strFormat(
                "redefinition of '%s'", name.c_str()));
        auto sym = std::make_unique<Symbol>();
        sym->name = name;
        sym->type = type;
        sym->kind = kind;
        sym->id = nextSymId++;
        Symbol *raw = sym.get();
        unit.symbols.push_back(std::move(sym));
        scope.emplace(name, raw);
        return raw;
    }

    // ---- types ----

    bool
    atTypeStart() const
    {
        switch (peek().kind) {
          case Tok::KwInt:
          case Tok::KwUnsigned:
          case Tok::KwChar:
          case Tok::KwShort:
          case Tok::KwVoid:
          case Tok::KwConst:
          case Tok::KwStatic:
            return true;
          default:
            return false;
        }
    }

    /** Parse type specifiers: [static] [const] [unsigned] base. */
    Type
    parseDeclSpec(bool *is_const = nullptr)
    {
        bool is_unsigned = false;
        bool saw_const = false;
        while (accept(Tok::KwConst) || accept(Tok::KwStatic))
            saw_const = saw_const || toks[pos - 1].is(Tok::KwConst);
        if (accept(Tok::KwUnsigned))
            is_unsigned = true;
        while (accept(Tok::KwConst))
            saw_const = true;
        BaseTy base;
        if (accept(Tok::KwInt)) {
            base = is_unsigned ? BaseTy::UInt : BaseTy::Int;
        } else if (accept(Tok::KwChar)) {
            base = is_unsigned ? BaseTy::UChar : BaseTy::Char;
        } else if (accept(Tok::KwShort)) {
            accept(Tok::KwInt);
            base = is_unsigned ? BaseTy::UShort : BaseTy::Short;
        } else if (accept(Tok::KwVoid)) {
            if (is_unsigned)
                errorHere("'unsigned void' is not a type");
            base = BaseTy::Void;
        } else if (is_unsigned) {
            base = BaseTy::UInt; // plain 'unsigned'
        } else {
            errorHere("expected a type");
        }
        while (accept(Tok::KwConst))
            saw_const = true;
        if (is_const)
            *is_const = saw_const;
        return Type::scalar(base);
    }

    /** Parse pointer stars and the declarator name. */
    Type
    parseDeclarator(Type base, std::string &name)
    {
        while (accept(Tok::Star))
            ++base.ptr;
        name = expect(Tok::Ident).text;
        return base;
    }

    /** Parse trailing array dimensions "[N][M]". */
    void
    parseArrayDims(Type &type)
    {
        while (accept(Tok::LBracket)) {
            ExprPtr dim = parseAssign();
            int64_t n = evalConst(*dim);
            if (n <= 0)
                throw CompileError(dim->line,
                                   "array dimension must be positive");
            type.dims.push_back(static_cast<int>(n));
            expect(Tok::RBracket);
        }
    }

    // ---- top level ----

    void
    parseTopLevel()
    {
        bool is_const = false;
        Type base = parseDeclSpec(&is_const);
        if (accept(Tok::Semi))
            return; // stray "int;"
        std::string name;
        Type type = parseDeclarator(base, name);
        int line = toks[pos - 1].line;
        if (at(Tok::LParen)) {
            parseFunction(name, type, line);
            return;
        }
        // Global variable(s).
        while (true) {
            parseArrayDims(type);
            parseGlobal(name, type, is_const, line);
            if (!accept(Tok::Comma))
                break;
            type = parseDeclarator(base, name);
            line = toks[pos - 1].line;
        }
        expect(Tok::Semi);
    }

    void
    parseGlobal(const std::string &name, const Type &type,
                bool is_const, int line)
    {
        Global g;
        g.name = name;
        g.type = type;
        g.isConst = is_const;
        g.line = line;
        if (accept(Tok::Assign)) {
            if (type.isArray()) {
                parseArrayInitializer(type, g.init, line);
            } else {
                ExprPtr e = parseAssign();
                g.init.push_back(evalConst(*e));
            }
        }
        g.sym = declare(name, SymKind::Global, type, line);
        unit.globals.push_back(std::move(g));
    }

    /** "{1, 2, {3, 4}}" or a string literal for char arrays; values
     *  are flattened row-major, zero-padded to the array extent. */
    void
    parseArrayInitializer(const Type &type, std::vector<int64_t> &out,
                          int line)
    {
        if (at(Tok::StringLit)) {
            const Token &t = advance();
            if (type.scalarSize() != 1)
                throw CompileError(t.line,
                                   "string initializer on non-char array");
            for (char c : t.text)
                out.push_back(static_cast<unsigned char>(c));
            out.push_back(0);
        } else {
            expect(Tok::LBrace);
            flattenBraces(out);
        }
        const size_t extent = type.sizeInBytes() / type.scalarSize();
        if (out.size() > extent)
            throw CompileError(line, "too many initializer values");
        out.resize(extent, 0);
    }

    void
    flattenBraces(std::vector<int64_t> &out)
    {
        // Opening brace already consumed.
        if (accept(Tok::RBrace))
            return;
        do {
            if (accept(Tok::LBrace)) {
                flattenBraces(out);
            } else {
                ExprPtr e = parseAssign();
                out.push_back(evalConst(*e));
            }
        } while (accept(Tok::Comma) && !at(Tok::RBrace));
        expect(Tok::RBrace);
    }

    void
    parseFunction(const std::string &name, const Type &ret_type,
                  int line)
    {
        Symbol *sym = lookup(name);
        if (sym && sym->kind != SymKind::Func)
            throw CompileError(line, strFormat(
                "'%s' redeclared as function", name.c_str()));
        if (!sym) {
            sym = declare(name, SymKind::Func, ret_type, line);
            sym->retType = ret_type;
        }

        expect(Tok::LParen);
        std::vector<DeclVar> params;
        if (!accept(Tok::RParen)) {
            if (at(Tok::KwVoid) && peek(1).is(Tok::RParen)) {
                advance();
                advance();
            } else {
                do {
                    Type pbase = parseDeclSpec();
                    std::string pname;
                    Type pty = parseDeclarator(pbase, pname);
                    parseArrayDims(pty);
                    if (pty.isArray())
                        pty = pty.decayed(); // arrays pass as pointers
                    DeclVar dv;
                    dv.name = pname;
                    dv.type = pty;
                    params.push_back(std::move(dv));
                } while (accept(Tok::Comma));
                expect(Tok::RParen);
            }
        }
        if (params.size() > 6)
            throw CompileError(line,
                               "more than 6 parameters not supported");

        if (accept(Tok::Semi)) {
            // Prototype.
            if (!sym->defined) {
                sym->paramTypes.clear();
                for (const DeclVar &p : params)
                    sym->paramTypes.push_back(p.type);
            }
            return;
        }

        if (sym->defined)
            throw CompileError(line, strFormat(
                "redefinition of function '%s'", name.c_str()));
        sym->defined = true;
        sym->retType = ret_type;
        sym->paramTypes.clear();
        for (const DeclVar &p : params)
            sym->paramTypes.push_back(p.type);

        Function fn;
        fn.name = name;
        fn.retType = ret_type;
        fn.sym = sym;
        fn.line = line;

        scopes.emplace_back();
        for (DeclVar &p : params) {
            p.sym = declare(p.name, SymKind::Param, p.type,
                            line);
            fn.params.push_back(std::move(p));
        }
        currentRet = ret_type;
        fn.body = parseBlock();
        scopes.pop_back();
        unit.functions.push_back(std::move(fn));
    }

    // ---- statements ----

    StmtPtr
    makeStmt(StmtKind kind)
    {
        auto s = std::make_unique<Stmt>();
        s->kind = kind;
        s->line = peek().line;
        return s;
    }

    StmtPtr
    parseBlock()
    {
        expect(Tok::LBrace);
        auto block = makeStmt(StmtKind::Block);
        scopes.emplace_back();
        while (!accept(Tok::RBrace))
            block->stmts.push_back(parseStmt());
        scopes.pop_back();
        return block;
    }

    StmtPtr
    parseStmt()
    {
        if (at(Tok::LBrace))
            return parseBlock();
        if (atTypeStart())
            return parseDeclStmt();
        if (accept(Tok::Semi))
            return makeStmt(StmtKind::Empty);

        if (accept(Tok::KwIf)) {
            auto s = makeStmt(StmtKind::If);
            expect(Tok::LParen);
            s->expr = parseExpr();
            expect(Tok::RParen);
            s->body = parseStmt();
            if (accept(Tok::KwElse))
                s->elseBody = parseStmt();
            return s;
        }
        if (accept(Tok::KwWhile)) {
            auto s = makeStmt(StmtKind::While);
            expect(Tok::LParen);
            s->expr = parseExpr();
            expect(Tok::RParen);
            s->body = parseStmt();
            return s;
        }
        if (accept(Tok::KwDo)) {
            auto s = makeStmt(StmtKind::DoWhile);
            s->body = parseStmt();
            expect(Tok::KwWhile);
            expect(Tok::LParen);
            s->expr = parseExpr();
            expect(Tok::RParen);
            expect(Tok::Semi);
            return s;
        }
        if (accept(Tok::KwFor)) {
            auto s = makeStmt(StmtKind::For);
            expect(Tok::LParen);
            scopes.emplace_back();
            if (!accept(Tok::Semi)) {
                if (atTypeStart()) {
                    s->init = parseDeclStmt();
                } else {
                    s->init = makeStmt(StmtKind::Expr);
                    s->init->expr = parseExpr();
                    expect(Tok::Semi);
                }
            }
            if (!at(Tok::Semi))
                s->expr = parseExpr();
            expect(Tok::Semi);
            if (!at(Tok::RParen))
                s->stepExpr = parseExpr();
            expect(Tok::RParen);
            s->body = parseStmt();
            scopes.pop_back();
            return s;
        }
        if (accept(Tok::KwReturn)) {
            auto s = makeStmt(StmtKind::Return);
            if (!at(Tok::Semi)) {
                if (currentRet.isVoid())
                    errorHere("void function returning a value");
                s->expr = parseExpr();
            } else if (!currentRet.isVoid()) {
                errorHere("non-void function must return a value");
            }
            expect(Tok::Semi);
            return s;
        }
        if (accept(Tok::KwBreak)) {
            expect(Tok::Semi);
            return makeStmt(StmtKind::Break);
        }
        if (accept(Tok::KwContinue)) {
            expect(Tok::Semi);
            return makeStmt(StmtKind::Continue);
        }

        auto s = makeStmt(StmtKind::Expr);
        s->expr = parseExpr();
        expect(Tok::Semi);
        return s;
    }

    StmtPtr
    parseDeclStmt()
    {
        auto s = makeStmt(StmtKind::Decl);
        bool is_const = false;
        Type base = parseDeclSpec(&is_const);
        do {
            std::string name;
            Type type = parseDeclarator(base, name);
            parseArrayDims(type);
            DeclVar dv;
            dv.name = name;
            dv.type = type;
            if (accept(Tok::Assign)) {
                if (type.isArray()) {
                    parseArrayInitializer(type, dv.arrayInit, s->line);
                    dv.hasArrayInit = true;
                } else {
                    dv.init = parseAssign();
                }
            }
            dv.sym = declare(name, SymKind::Local, type, s->line);
            if (type.isArray())
                dv.sym->addressTaken = true; // arrays live in memory
            s->decls.push_back(std::move(dv));
        } while (accept(Tok::Comma));
        expect(Tok::Semi);
        return s;
    }

    // ---- expressions ----

    ExprPtr
    makeExpr(ExprKind kind)
    {
        auto e = std::make_unique<Expr>();
        e->kind = kind;
        e->line = peek().line;
        return e;
    }

    ExprPtr parseExpr() { return parseAssign(); }

    ExprPtr
    parseAssign()
    {
        ExprPtr lhs = parseCond();
        Tok t = peek().kind;
        if (t == Tok::Assign || compoundBase(t) != Tok::End) {
            requireLvalue(*lhs);
            advance();
            auto e = makeExpr(ExprKind::Assign);
            e->op = t;
            e->line = lhs->line;
            ExprPtr rhs = parseAssign();
            e->ty = lhs->ty;
            e->kids.push_back(std::move(lhs));
            e->kids.push_back(std::move(rhs));
            return e;
        }
        return lhs;
    }

    ExprPtr
    parseCond()
    {
        ExprPtr c = parseBinary(1);
        if (!accept(Tok::Question))
            return c;
        auto e = makeExpr(ExprKind::Cond);
        e->line = c->line;
        ExprPtr t = parseAssign();
        expect(Tok::Colon);
        ExprPtr f = parseCond();
        e->ty = t->ty;
        e->kids.push_back(std::move(c));
        e->kids.push_back(std::move(t));
        e->kids.push_back(std::move(f));
        return e;
    }

    ExprPtr
    parseBinary(int min_prec)
    {
        ExprPtr lhs = parseUnary();
        while (true) {
            Tok t = peek().kind;
            int p = precOf(t);
            if (p < min_prec || p == 0)
                return lhs;
            advance();
            ExprPtr rhs = parseBinary(p + 1);
            auto e = makeExpr(ExprKind::Binary);
            e->op = t;
            e->line = lhs->line;
            typeBinary(*e, *lhs, *rhs);
            e->kids.push_back(std::move(lhs));
            e->kids.push_back(std::move(rhs));
            lhs = std::move(e);
        }
    }

    void
    typeBinary(Expr &e, const Expr &lhs, const Expr &rhs)
    {
        const Type lt = lhs.ty.isArray() && lhs.ty.dims.size() == 1
            ? lhs.ty.decayed() : lhs.ty;
        const Type rt = rhs.ty.isArray() && rhs.ty.dims.size() == 1
            ? rhs.ty.decayed() : rhs.ty;
        switch (e.op) {
          case Tok::Plus:
          case Tok::Minus:
            if (lt.isPointer() && rt.isPointer()) {
                if (e.op == Tok::Plus)
                    throw CompileError(e.line,
                                       "cannot add two pointers");
                e.ty = Type::scalar(BaseTy::Int);
            } else if (lt.isPointer()) {
                e.ty = lt;
            } else if (rt.isPointer()) {
                if (e.op == Tok::Minus)
                    throw CompileError(e.line,
                                       "int - pointer is invalid");
                e.ty = rt;
            } else {
                e.ty = usualArith(lt, rt);
            }
            break;
          case Tok::Star:
          case Tok::Slash:
          case Tok::Percent:
          case Tok::Amp:
          case Tok::Pipe:
          case Tok::Caret:
            e.ty = usualArith(lt, rt);
            break;
          case Tok::Shl:
          case Tok::Shr:
            e.ty = promote(lt);
            break;
          case Tok::Lt:
          case Tok::Gt:
          case Tok::Le:
          case Tok::Ge:
          case Tok::EqEq:
          case Tok::NotEq:
          case Tok::AndAnd:
          case Tok::OrOr:
            e.ty = Type::scalar(BaseTy::Int);
            break;
          default:
            panic("typeBinary: unexpected operator");
        }
    }

    static Type
    promote(const Type &t)
    {
        if (t.isPointer())
            return t;
        return Type::scalar(
            t.base == BaseTy::UInt ? BaseTy::UInt : BaseTy::Int);
    }

    static Type
    usualArith(const Type &a, const Type &b)
    {
        const bool u = a.base == BaseTy::UInt || b.base == BaseTy::UInt;
        return Type::scalar(u ? BaseTy::UInt : BaseTy::Int);
    }

    void
    requireLvalue(const Expr &e) const
    {
        const bool ok =
            (e.kind == ExprKind::Var && !e.ty.isArray()) ||
            e.kind == ExprKind::Index ||
            (e.kind == ExprKind::Unary && e.op == Tok::Star);
        if (!ok)
            throw CompileError(e.line, "assignment to non-lvalue");
    }

    ExprPtr
    parseUnary()
    {
        int line = peek().line;
        if (accept(Tok::Plus))
            return parseUnary();
        if (at(Tok::Minus) || at(Tok::Tilde) || at(Tok::Bang) ||
            at(Tok::Star) || at(Tok::Amp) || at(Tok::PlusPlus) ||
            at(Tok::MinusMinus)) {
            Tok op = advance().kind;
            auto e = makeExpr(ExprKind::Unary);
            e->op = op;
            e->line = line;
            ExprPtr k = parseUnary();
            switch (op) {
              case Tok::Minus:
              case Tok::Tilde:
                e->ty = promote(k->ty);
                break;
              case Tok::Bang:
                e->ty = Type::scalar(BaseTy::Int);
                break;
              case Tok::Star: {
                Type kt = k->ty.isArray() && k->ty.dims.size() == 1
                    ? k->ty.decayed() : k->ty;
                if (!kt.isPointer() && kt.dims.empty())
                    throw CompileError(line,
                                       "dereference of non-pointer");
                e->ty = kt.subscripted();
                break;
              }
              case Tok::Amp:
                if (k->kind == ExprKind::Var && k->sym)
                    k->sym->addressTaken = true;
                e->ty = k->ty;
                if (e->ty.isArray())
                    e->ty = e->ty.decayed();
                else
                    ++e->ty.ptr;
                break;
              case Tok::PlusPlus:
              case Tok::MinusMinus:
                requireLvalue(*k);
                e->ty = k->ty;
                break;
              default:
                panic("unreachable");
            }
            e->kids.push_back(std::move(k));
            return e;
        }
        if (accept(Tok::KwSizeof)) {
            auto e = makeExpr(ExprKind::IntLit);
            e->line = line;
            expect(Tok::LParen);
            if (atTypeStart()) {
                Type t = parseDeclSpec();
                while (accept(Tok::Star))
                    ++t.ptr;
                e->ival = t.sizeInBytes();
            } else {
                ExprPtr k = parseExpr();
                e->ival = k->ty.sizeInBytes();
            }
            expect(Tok::RParen);
            e->ty = Type::scalar(BaseTy::UInt);
            return e;
        }
        // Cast: "(type" at expression position.
        if (at(Tok::LParen) && isTypeTok(peek(1).kind)) {
            advance();
            Type t = parseDeclSpec();
            while (accept(Tok::Star))
                ++t.ptr;
            expect(Tok::RParen);
            auto e = makeExpr(ExprKind::Cast);
            e->line = line;
            e->castTy = t;
            e->ty = t;
            e->kids.push_back(parseUnary());
            return e;
        }
        return parsePostfix();
    }

    static bool
    isTypeTok(Tok t)
    {
        switch (t) {
          case Tok::KwInt:
          case Tok::KwUnsigned:
          case Tok::KwChar:
          case Tok::KwShort:
          case Tok::KwVoid:
          case Tok::KwConst:
            return true;
          default:
            return false;
        }
    }

    ExprPtr
    parsePostfix()
    {
        ExprPtr e = parsePrimary();
        while (true) {
            if (accept(Tok::LBracket)) {
                auto idx = makeExpr(ExprKind::Index);
                idx->line = e->line;
                ExprPtr sub = parseExpr();
                expect(Tok::RBracket);
                if (!e->ty.isArray() && !e->ty.isPointer())
                    throw CompileError(idx->line,
                                       "subscript of non-array");
                idx->ty = e->ty.subscripted();
                idx->kids.push_back(std::move(e));
                idx->kids.push_back(std::move(sub));
                e = std::move(idx);
            } else if (at(Tok::PlusPlus) || at(Tok::MinusMinus)) {
                Tok op = advance().kind;
                requireLvalue(*e);
                auto u = makeExpr(ExprKind::Unary);
                u->op = op;
                u->postfix = true;
                u->line = e->line;
                u->ty = e->ty;
                u->kids.push_back(std::move(e));
                e = std::move(u);
            } else {
                return e;
            }
        }
    }

    ExprPtr
    parsePrimary()
    {
        int line = peek().line;
        if (at(Tok::Number) || at(Tok::CharLit)) {
            const Token &t = advance();
            auto e = makeExpr(ExprKind::IntLit);
            e->line = line;
            e->ival = t.value;
            e->ty = Type::scalar(BaseTy::Int);
            return e;
        }
        if (at(Tok::StringLit)) {
            const Token &t = advance();
            auto e = makeExpr(ExprKind::StrLit);
            e->line = line;
            e->name = internString(t.text);
            e->ty = Type::scalar(BaseTy::Char, 1);
            return e;
        }
        if (accept(Tok::LParen)) {
            ExprPtr e = parseExpr();
            expect(Tok::RParen);
            return e;
        }
        if (at(Tok::Ident)) {
            const Token &t = advance();
            if (at(Tok::LParen))
                return parseCall(t.text, line);
            Symbol *sym = lookup(t.text);
            if (!sym)
                throw CompileError(line, strFormat(
                    "use of undeclared identifier '%s'",
                    t.text.c_str()));
            auto e = makeExpr(ExprKind::Var);
            e->line = line;
            e->name = t.text;
            e->sym = sym;
            e->ty = sym->type;
            return e;
        }
        errorHere(strFormat("unexpected %s in expression",
                            tokName(peek().kind).c_str()));
    }

    ExprPtr
    parseCall(const std::string &name, int line)
    {
        Symbol *sym = lookup(name);
        if (!sym || sym->kind != SymKind::Func)
            throw CompileError(line, strFormat(
                "call of undeclared function '%s'", name.c_str()));
        expect(Tok::LParen);
        auto e = makeExpr(ExprKind::Call);
        e->line = line;
        e->name = name;
        e->sym = sym;
        e->ty = sym->retType;
        if (!accept(Tok::RParen)) {
            do {
                e->kids.push_back(parseAssign());
            } while (accept(Tok::Comma));
            expect(Tok::RParen);
        }
        if (e->kids.size() != sym->paramTypes.size())
            throw CompileError(line, strFormat(
                "'%s' expects %zu argument(s), got %zu",
                name.c_str(), sym->paramTypes.size(),
                e->kids.size()));
        return e;
    }

    std::string
    internString(const std::string &bytes)
    {
        for (const StringLiteral &s : unit.strings)
            if (s.bytes == bytes)
                return s.label;
        StringLiteral lit;
        lit.label = strFormat(".Lstr%zu", unit.strings.size());
        lit.bytes = bytes;
        unit.strings.push_back(lit);
        return lit.label;
    }

    // ---- constant evaluation ----

    int64_t
    evalConst(const Expr &e)
    {
        switch (e.kind) {
          case ExprKind::IntLit:
            return e.ival;
          case ExprKind::Unary:
            switch (e.op) {
              case Tok::Minus: return -evalConst(*e.kids[0]);
              case Tok::Tilde: return ~evalConst(*e.kids[0]);
              case Tok::Bang: return !evalConst(*e.kids[0]);
              default: break;
            }
            break;
          case ExprKind::Cast:
            return evalConst(*e.kids[0]);
          case ExprKind::Binary: {
            int64_t a = evalConst(*e.kids[0]);
            int64_t b = evalConst(*e.kids[1]);
            int32_t x = static_cast<int32_t>(a);
            int32_t y = static_cast<int32_t>(b);
            switch (e.op) {
              case Tok::Plus: return x + y;
              case Tok::Minus: return x - y;
              case Tok::Star: return x * y;
              case Tok::Slash:
                if (y == 0)
                    throw CompileError(e.line,
                                       "division by zero in constant");
                return x / y;
              case Tok::Percent:
                if (y == 0)
                    throw CompileError(e.line,
                                       "division by zero in constant");
                return x % y;
              case Tok::Shl: return x << (y & 31);
              case Tok::Shr: return x >> (y & 31);
              case Tok::Amp: return x & y;
              case Tok::Pipe: return x | y;
              case Tok::Caret: return x ^ y;
              case Tok::Lt: return x < y;
              case Tok::Gt: return x > y;
              case Tok::Le: return x <= y;
              case Tok::Ge: return x >= y;
              case Tok::EqEq: return x == y;
              case Tok::NotEq: return x != y;
              case Tok::AndAnd: return x && y;
              case Tok::OrOr: return x || y;
              default: break;
            }
            break;
          }
          default:
            break;
        }
        throw CompileError(e.line, "expression is not constant");
    }

    std::vector<Token> toks;
    size_t pos = 0;
    TranslationUnit unit;
    std::vector<std::unordered_map<std::string, Symbol *>> scopes;
    int nextSymId = 0;
    Type currentRet;
};

} // namespace

TranslationUnit
parse(const std::string &source)
{
    return Parser(lex(source)).run();
}

} // namespace rissp::minic
