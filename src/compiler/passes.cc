#include "compiler/passes.hh"

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "compiler/lower.hh"
#include "util/bits.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace rissp::minic
{

namespace
{

/** Per-vreg definition counts (index shifted by 2 for kZeroVreg). */
std::vector<int>
defCounts(const IrFunction &fn)
{
    std::vector<int> counts(static_cast<size_t>(fn.nextVreg), 0);
    for (const IrInstr &in : fn.code)
        if (in.dst >= 0)
            ++counts[static_cast<size_t>(in.dst)];
    for (int v : fn.paramVregs)
        if (v >= 0)
            ++counts[static_cast<size_t>(v)];
    return counts;
}

bool
singleDef(const std::vector<int> &counts, int v)
{
    if (v == kZeroVreg)
        return true;
    return v >= 0 && counts[static_cast<size_t>(v)] == 1;
}

/** Known constant value of a vreg, if provable. */
class ConstMap
{
  public:
    explicit ConstMap(const IrFunction &fn) : counts(defCounts(fn))
    {
        for (const IrInstr &in : fn.code)
            if (in.op == IrOp::Const && singleDef(counts, in.dst))
                values[in.dst] = static_cast<int32_t>(in.imm);
    }

    std::optional<int32_t>
    get(int v) const
    {
        if (v == kZeroVreg)
            return 0;
        auto it = values.find(v);
        return it == values.end()
            ? std::nullopt : std::optional<int32_t>(it->second);
    }

    bool isSingleDef(int v) const { return singleDef(counts, v); }

  private:
    std::vector<int> counts;
    std::unordered_map<int, int32_t> values;
};

std::optional<int32_t>
foldBin(IrOp op, int32_t a, int32_t b)
{
    const uint32_t ua = static_cast<uint32_t>(a);
    const uint32_t ub = static_cast<uint32_t>(b);
    switch (op) {
      case IrOp::Add: return a + b;
      case IrOp::Sub: return a - b;
      case IrOp::Mul: return static_cast<int32_t>(ua * ub);
      case IrOp::And: return a & b;
      case IrOp::Or: return a | b;
      case IrOp::Xor: return a ^ b;
      case IrOp::Shl: return static_cast<int32_t>(ua << (ub & 31));
      case IrOp::ShrL: return static_cast<int32_t>(ua >> (ub & 31));
      case IrOp::ShrA: return a >> (ub & 31);
      default: return std::nullopt;
    }
}

std::optional<int32_t>
foldBinI(IrOp op, int32_t a, int32_t imm)
{
    const uint32_t ua = static_cast<uint32_t>(a);
    switch (op) {
      case IrOp::AddI: return a + imm;
      case IrOp::AndI: return a & imm;
      case IrOp::OrI: return a | imm;
      case IrOp::XorI: return a ^ imm;
      case IrOp::ShlI: return static_cast<int32_t>(ua << (imm & 31));
      case IrOp::ShrLI: return static_cast<int32_t>(ua >> (imm & 31));
      case IrOp::ShrAI: return a >> (imm & 31);
      default: return std::nullopt;
    }
}

bool
evalCond(Cond cc, int32_t a, int32_t b)
{
    const uint32_t ua = static_cast<uint32_t>(a);
    const uint32_t ub = static_cast<uint32_t>(b);
    switch (cc) {
      case Cond::Eq: return a == b;
      case Cond::Ne: return a != b;
      case Cond::LtS: return a < b;
      case Cond::GeS: return a >= b;
      case Cond::LtU: return ua < ub;
      case Cond::GeU: return ua >= ub;
    }
    return false;
}

/** Map a Bin op to its immediate form, if one exists. */
IrOp
immFormOf(IrOp op)
{
    switch (op) {
      case IrOp::Add: return IrOp::AddI;
      case IrOp::And: return IrOp::AndI;
      case IrOp::Or: return IrOp::OrI;
      case IrOp::Xor: return IrOp::XorI;
      case IrOp::Shl: return IrOp::ShlI;
      case IrOp::ShrL: return IrOp::ShrLI;
      case IrOp::ShrA: return IrOp::ShrAI;
      default: return op;
    }
}

} // namespace

size_t
constFoldPass(IrFunction &fn)
{
    ConstMap consts(fn);
    size_t changed = 0;
    std::vector<IrInstr> out;
    out.reserve(fn.code.size());

    auto to_const = [&](IrInstr in, int32_t v) {
        IrInstr c;
        c.op = IrOp::Const;
        c.dst = in.dst;
        c.imm = v;
        out.push_back(c);
        ++changed;
    };

    for (IrInstr in : fn.code) {
        auto ca = consts.get(in.a);
        auto cb = consts.get(in.b);
        switch (in.op) {
          case IrOp::Copy:
            if (ca && consts.isSingleDef(in.dst)) {
                to_const(in, *ca);
                continue;
            }
            break;
          case IrOp::Add:
          case IrOp::Sub:
          case IrOp::Mul:
          case IrOp::And:
          case IrOp::Or:
          case IrOp::Xor:
          case IrOp::Shl:
          case IrOp::ShrL:
          case IrOp::ShrA: {
            if (ca && cb) {
                if (auto v = foldBin(in.op, *ca, *cb)) {
                    to_const(in, *v);
                    continue;
                }
            }
            // One constant operand: use the immediate form.
            if (cb && fitsSigned(*cb, 12) && in.op != IrOp::Sub &&
                immFormOf(in.op) != in.op) {
                in.imm = *cb;
                in.op = immFormOf(in.op);
                in.b = -1;
                ++changed;
            } else if (in.op == IrOp::Sub && cb &&
                       fitsSigned(-static_cast<int64_t>(*cb), 12)) {
                in.op = IrOp::AddI;
                in.imm = -static_cast<int64_t>(*cb);
                in.b = -1;
                ++changed;
            } else if (ca && fitsSigned(*ca, 12) &&
                       (in.op == IrOp::Add || in.op == IrOp::And ||
                        in.op == IrOp::Or || in.op == IrOp::Xor)) {
                // Commutative: swap the constant to the right.
                in.imm = *ca;
                in.a = in.b;
                in.op = immFormOf(in.op);
                in.b = -1;
                ++changed;
            }
            break;
          }
          case IrOp::AddI:
          case IrOp::AndI:
          case IrOp::OrI:
          case IrOp::XorI:
          case IrOp::ShlI:
          case IrOp::ShrLI:
          case IrOp::ShrAI:
            if (ca) {
                if (auto v = foldBinI(in.op, *ca,
                                      static_cast<int32_t>(in.imm))) {
                    to_const(in, *v);
                    continue;
                }
            }
            // Identity: x op 0 (or shift by 0) is a copy.
            if (in.imm == 0 &&
                (in.op == IrOp::AddI || in.op == IrOp::OrI ||
                 in.op == IrOp::XorI || in.op == IrOp::ShlI ||
                 in.op == IrOp::ShrLI || in.op == IrOp::ShrAI)) {
                in.op = IrOp::Copy;
                ++changed;
            }
            break;
          case IrOp::SetCc:
            if (ca && cb) {
                to_const(in, evalCond(in.cc, *ca, *cb) ? 1 : 0);
                continue;
            }
            break;
          case IrOp::SetCcI:
            if (ca) {
                to_const(in, evalCond(in.cc, *ca,
                                      static_cast<int32_t>(in.imm))
                         ? 1 : 0);
                continue;
            }
            break;
          case IrOp::Branch:
            if (ca && cb) {
                if (evalCond(in.cc, *ca, *cb)) {
                    IrInstr j;
                    j.op = IrOp::Jump;
                    j.sym = in.sym;
                    out.push_back(j);
                }
                ++changed;
                continue;
            }
            break;
          default:
            break;
        }
        out.push_back(std::move(in));
    }
    fn.code = std::move(out);
    return changed;
}

size_t
copyPropPass(IrFunction &fn)
{
    std::vector<int> counts = defCounts(fn);
    // x -> y for single-def x = Copy(single-def y)
    std::unordered_map<int, int> fwd;
    for (const IrInstr &in : fn.code) {
        if (in.op == IrOp::Copy && singleDef(counts, in.dst) &&
            singleDef(counts, in.a))
            fwd[in.dst] = in.a;
    }
    if (fwd.empty())
        return 0;
    auto resolve = [&](int v) {
        int hops = 0;
        while (hops++ < 16) {
            auto it = fwd.find(v);
            if (it == fwd.end())
                return v;
            v = it->second;
        }
        return v;
    };
    size_t changed = 0;
    for (IrInstr &in : fn.code) {
        if (in.a >= 0) {
            int r = resolve(in.a);
            if (r != in.a) {
                in.a = r;
                ++changed;
            }
        }
        if (in.b >= 0) {
            int r = resolve(in.b);
            if (r != in.b) {
                in.b = r;
                ++changed;
            }
        }
        for (int &arg : in.args) {
            int r = resolve(arg);
            if (r != arg) {
                arg = r;
                ++changed;
            }
        }
    }
    return changed;
}

size_t
csePass(IrFunction &fn)
{
    std::vector<int> counts = defCounts(fn);
    size_t changed = 0;
    // key -> dst of the earlier identical computation
    std::unordered_map<std::string, int> table;
    for (IrInstr &in : fn.code) {
        switch (in.op) {
          case IrOp::Label:
          case IrOp::Branch:
          case IrOp::Jump:
          case IrOp::Ret:
            table.clear(); // basic block boundary
            continue;
          default:
            break;
        }
        if (!isPure(in.op) || in.dst < 0 ||
            !singleDef(counts, in.dst))
            continue;
        if (in.a >= 0 && !singleDef(counts, in.a))
            continue;
        if (in.b >= 0 && !singleDef(counts, in.b))
            continue;
        const std::string key = strFormat(
            "%d:%d:%d:%lld:%d:%s", static_cast<int>(in.op), in.a,
            in.b, static_cast<long long>(in.imm),
            static_cast<int>(in.cc), in.sym.c_str());
        auto it = table.find(key);
        if (it == table.end()) {
            table.emplace(key, in.dst);
            continue;
        }
        // Replace with a copy of the earlier result.
        in.op = IrOp::Copy;
        in.a = it->second;
        in.b = -1;
        in.imm = 0;
        in.sym.clear();
        ++changed;
    }
    return changed;
}

size_t
dcePass(IrFunction &fn)
{
    size_t removed_total = 0;
    while (true) {
        std::vector<int> uses(static_cast<size_t>(fn.nextVreg), 0);
        for (const IrInstr &in : fn.code) {
            if (in.a >= 0)
                ++uses[static_cast<size_t>(in.a)];
            if (in.b >= 0)
                ++uses[static_cast<size_t>(in.b)];
            for (int arg : in.args)
                if (arg >= 0)
                    ++uses[static_cast<size_t>(arg)];
        }
        std::vector<IrInstr> out;
        out.reserve(fn.code.size());
        size_t removed = 0;
        for (IrInstr &in : fn.code) {
            const bool dead = (isPure(in.op) || in.op == IrOp::Copy) &&
                in.dst >= 0 &&
                uses[static_cast<size_t>(in.dst)] == 0;
            if (dead) {
                ++removed;
            } else {
                out.push_back(std::move(in));
            }
        }
        fn.code = std::move(out);
        removed_total += removed;
        if (removed == 0)
            break;
    }
    return removed_total;
}

size_t
cleanupPass(IrFunction &fn)
{
    size_t changed = 0;
    // Drop unreachable instructions after an unconditional transfer.
    std::vector<IrInstr> out;
    out.reserve(fn.code.size());
    bool unreachable = false;
    for (IrInstr &in : fn.code) {
        if (in.op == IrOp::Label)
            unreachable = false;
        if (unreachable) {
            ++changed;
            continue;
        }
        if (in.op == IrOp::Jump || in.op == IrOp::Ret)
            unreachable = true;
        out.push_back(std::move(in));
    }
    // Drop jumps/branches to the immediately following label.
    std::vector<IrInstr> out2;
    out2.reserve(out.size());
    for (size_t i = 0; i < out.size(); ++i) {
        if ((out[i].op == IrOp::Jump || out[i].op == IrOp::Branch)) {
            size_t j = i + 1;
            bool falls_to_target = false;
            while (j < out.size() && out[j].op == IrOp::Label) {
                if (out[j].sym == out[i].sym) {
                    falls_to_target = true;
                    break;
                }
                ++j;
            }
            if (falls_to_target) {
                ++changed;
                continue;
            }
        }
        out2.push_back(std::move(out[i]));
    }
    fn.code = std::move(out2);
    return changed;
}

size_t
inlinePass(IrUnit &unit, int threshold)
{
    if (threshold <= 0)
        return 0;
    size_t inlined = 0;
    for (IrFunction &caller : unit.funcs) {
        std::vector<IrInstr> out;
        out.reserve(caller.code.size());
        for (IrInstr &in : caller.code) {
            if (in.op != IrOp::Call || startsWith(in.sym, "__")) {
                out.push_back(std::move(in));
                continue;
            }
            IrFunction *callee = unit.findFunc(in.sym);
            const bool eligible = callee &&
                callee->name != caller.name &&
                !callee->hasCalls() &&
                callee->bodySize() <=
                    static_cast<size_t>(threshold) &&
                callee->paramVregs.size() == in.args.size();
            if (!eligible || !callee) {
                out.push_back(std::move(in));
                continue;
            }
            // Splice the callee with renamed vregs/slots/labels.
            const int vreg_base = caller.nextVreg;
            caller.nextVreg += callee->nextVreg;
            const int slot_base =
                static_cast<int>(caller.slots.size());
            for (const StackSlot &s : callee->slots)
                caller.newSlot(s.size);
            const std::string end_label = strFormat(
                ".Linl_%s_%s_%zu", caller.name.c_str(),
                callee->name.c_str(), inlined);
            auto remap = [&](int v) {
                return v < 0 ? v : v + vreg_base;
            };
            // Bind arguments to the callee's parameter homes.
            for (size_t p = 0; p < in.args.size(); ++p) {
                if (callee->paramVregs[p] >= 0) {
                    IrInstr cp;
                    cp.op = IrOp::Copy;
                    cp.dst = remap(callee->paramVregs[p]);
                    cp.a = in.args[p];
                    out.push_back(cp);
                } else {
                    IrInstr ad;
                    ad.op = IrOp::AddrLocal;
                    ad.dst = caller.nextVreg++;
                    ad.imm = callee->paramSlots[p] + slot_base;
                    out.push_back(ad);
                    IrInstr st;
                    st.op = IrOp::Store;
                    st.a = in.args[p];
                    st.b = ad.dst;
                    st.width = 4;
                    out.push_back(st);
                }
            }
            for (const IrInstr &ci : callee->code) {
                IrInstr ni = ci;
                ni.dst = remap(ni.dst);
                ni.a = remap(ni.a);
                ni.b = remap(ni.b);
                for (int &arg : ni.args)
                    arg = remap(arg);
                if (ni.op == IrOp::AddrLocal)
                    ni.imm += slot_base;
                if (ni.op == IrOp::Label || ni.op == IrOp::Jump ||
                    ni.op == IrOp::Branch)
                    ni.sym = strFormat(".Linl%zu_%s", inlined,
                                       ni.sym.c_str());
                if (ni.op == IrOp::Ret) {
                    if (in.dst >= 0) {
                        IrInstr cp;
                        cp.op = IrOp::Copy;
                        cp.dst = in.dst;
                        cp.a = ni.a >= 0 ? ni.a : kZeroVreg;
                        out.push_back(cp);
                    }
                    IrInstr j;
                    j.op = IrOp::Jump;
                    j.sym = end_label;
                    out.push_back(j);
                    continue;
                }
                out.push_back(std::move(ni));
            }
            IrInstr end;
            end.op = IrOp::Label;
            end.sym = end_label;
            out.push_back(end);
            ++inlined;
        }
        caller.code = std::move(out);
    }
    return inlined;
}

void
optimize(IrUnit &unit, const PassOptions &options)
{
    if (!options.optimize)
        return;
    inlinePass(unit, options.inlineThreshold);
    for (IrFunction &fn : unit.funcs) {
        for (int round = 0; round < 4; ++round) {
            size_t changed = 0;
            changed += constFoldPass(fn);
            changed += copyPropPass(fn);
            changed += dcePass(fn);
            if (changed == 0)
                break;
        }
        if (options.cse) {
            csePass(fn);
            copyPropPass(fn);
            dcePass(fn);
        }
        cleanupPass(fn);
    }
}

} // namespace rissp::minic
