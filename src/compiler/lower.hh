/**
 * @file
 * AST to IR lowering, including the optimization-level-dependent
 * lowering decisions (RV32E has no M extension, so multiplies and
 * divides either decompose into shift/add sequences or become calls
 * into the assembly runtime helpers — exactly the choice that shapes
 * each application's instruction subset in Table 3).
 */

#ifndef RISSP_COMPILER_LOWER_HH
#define RISSP_COMPILER_LOWER_HH

#include <set>

#include "compiler/ir.hh"

namespace rissp::minic
{

/** Architectural-zero pseudo vreg (maps to register x0). */
constexpr int kZeroVreg = -2;

/** Lowering knobs derived from the -O level. */
struct LowerOptions
{
    bool spillAll = false;      ///< O0: every variable lives in memory
    bool foldConstants = true;  ///< O1+: fold constant subtrees
    bool inlineMulConst = true; ///< O1+: shift/add constant multiplies
    int mulMaxOps = 3;          ///< max adds in a decomposition
    bool inlineDivPow2 = true;  ///< O2+: branchless signed div by 2^k
    /** Target a RISSP whose library includes the custom cmul block:
     *  multiplies become single instructions instead of __mulsi3
     *  calls or shift/add chains (power-of-two strength reduction is
     *  still applied). */
    bool useCustomMul = false;
};

/** Result of lowering a translation unit. */
struct LowerResult
{
    IrUnit ir;
    std::set<std::string> usedHelpers; ///< __mulsi3 etc.
};

/** Lower @p unit; throws CompileError on unsupported constructs. */
LowerResult lowerUnit(const TranslationUnit &unit,
                      const LowerOptions &options);

} // namespace rissp::minic

#endif // RISSP_COMPILER_LOWER_HH
