/**
 * @file
 * Linear-scan register allocation over the RV32E register budget.
 *
 * RV32E leaves little room: this allocator hands out t0-t2 (caller
 * saved) and s0-s1 (callee saved, used for values live across calls),
 * keeps a0-a5 for argument staging and a4/a5 doubling as spill
 * scratch, and spills the rest to the frame. At -O0 everything spills,
 * which reproduces the bloated memory-to-memory code gcc -O0 emits —
 * the top-left corner of Figure 5.
 */

#ifndef RISSP_COMPILER_REGALLOC_HH
#define RISSP_COMPILER_REGALLOC_HH

#include <vector>

#include "compiler/ir.hh"

namespace rissp::minic
{

/** Where a vreg lives at emission time. */
struct VregLoc
{
    enum class Kind : uint8_t { Unused, Reg, Spill } kind =
        Kind::Unused;
    unsigned reg = 0;    ///< architectural register index
    int slot = -1;       ///< frame slot id when spilled
};

/** Allocation result for one function. */
struct Allocation
{
    std::vector<VregLoc> locs;        ///< indexed by vreg
    bool usesS0 = false;              ///< callee-saved s0 taken
    bool usesS1 = false;              ///< callee-saved s1 taken
    size_t spillCount = 0;
};

/**
 * Allocate registers for @p fn. May append spill slots to fn.slots.
 * @param spill_all -O0 mode: every vreg gets a frame slot
 */
Allocation allocateRegisters(IrFunction &fn, bool spill_all);

} // namespace rissp::minic

#endif // RISSP_COMPILER_REGALLOC_HH
