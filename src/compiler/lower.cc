#include "compiler/lower.hh"

#include <optional>

#include "compiler/lexer.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace rissp::minic
{

namespace
{

bool
isPow2(uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

unsigned
log2Of(uint32_t v)
{
    unsigned n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

class Lowerer
{
  public:
    Lowerer(const TranslationUnit &u, const LowerOptions &o)
        : unit(u), opts(o)
    {
    }

    LowerResult
    run()
    {
        LowerResult result;
        result.ir.ast = &unit;
        for (const Function &fn : unit.functions)
            result.ir.funcs.push_back(lowerFunction(fn));
        result.usedHelpers = usedHelpers;
        return result;
    }

  private:
    // ---- per-function state ----

    const TranslationUnit &unit;
    const LowerOptions &opts;
    std::set<std::string> usedHelpers;

    IrFunction fn;
    const Function *astFn = nullptr;
    int labelCounter = 0;
    // symbol id -> location
    struct Loc
    {
        enum class Kind : uint8_t { Vreg, Slot, Global } kind;
        int index = 0;        ///< vreg or slot id
        std::string sym;      ///< global name
    };
    std::unordered_map<int, Loc> locs;
    std::vector<std::string> breakLabels;
    std::vector<std::string> continueLabels;

    std::string
    newLabel(const char *hint)
    {
        return strFormat(".L%s_%s%d", astFn->name.c_str(), hint,
                         labelCounter++);
    }

    IrInstr &
    emit(IrOp op)
    {
        fn.code.emplace_back();
        fn.code.back().op = op;
        return fn.code.back();
    }

    int
    emitConst(int64_t value)
    {
        if (value == 0)
            return kZeroVreg;
        IrInstr &in = emit(IrOp::Const);
        in.dst = fn.newVreg();
        in.imm = static_cast<int32_t>(value);
        return in.dst;
    }

    int
    emitBin(IrOp op, int a, int b)
    {
        IrInstr &in = emit(op);
        in.dst = fn.newVreg();
        in.a = a;
        in.b = b;
        return in.dst;
    }

    int
    emitBinI(IrOp op, int a, int64_t imm)
    {
        IrInstr &in = emit(op);
        in.dst = fn.newVreg();
        in.a = a;
        in.imm = imm;
        return in.dst;
    }

    void
    emitCopyTo(int dst, int src)
    {
        IrInstr &in = emit(IrOp::Copy);
        in.dst = dst;
        in.a = src;
    }

    void
    emitLabel(const std::string &name)
    {
        IrInstr &in = emit(IrOp::Label);
        in.sym = name;
    }

    void
    emitJump(const std::string &name)
    {
        IrInstr &in = emit(IrOp::Jump);
        in.sym = name;
    }

    void
    emitBranch(Cond cc, int a, int b, const std::string &target)
    {
        IrInstr &in = emit(IrOp::Branch);
        in.cc = cc;
        in.a = a;
        in.b = b;
        in.sym = target;
    }

    int
    emitCall(const std::string &callee, std::vector<int> args,
             bool has_result)
    {
        IrInstr &in = emit(IrOp::Call);
        in.sym = callee;
        in.args = std::move(args);
        if (has_result)
            in.dst = fn.newVreg();
        return in.dst;
    }

    int
    emitHelperCall(const char *helper, int a, int b)
    {
        usedHelpers.insert(helper);
        return emitCall(helper, {a, b}, true);
    }

    // ---- constant analysis ----

    std::optional<int32_t>
    tryConst(const Expr &e) const
    {
        if (!opts.foldConstants && e.kind != ExprKind::IntLit)
            return std::nullopt;
        switch (e.kind) {
          case ExprKind::IntLit:
            return static_cast<int32_t>(e.ival);
          case ExprKind::Cast:
            return tryConst(*e.kids[0]);
          case ExprKind::Unary: {
            auto k = tryConst(*e.kids[0]);
            if (!k)
                return std::nullopt;
            switch (e.op) {
              case Tok::Minus: return -*k;
              case Tok::Tilde: return ~*k;
              case Tok::Bang: return !*k;
              default: return std::nullopt;
            }
          }
          case ExprKind::Binary: {
            auto x = tryConst(*e.kids[0]);
            auto y = tryConst(*e.kids[1]);
            if (!x || !y)
                return std::nullopt;
            const bool uns = e.kids[0]->ty.isUnsignedTy() ||
                e.kids[1]->ty.isUnsignedTy();
            const uint32_t ux = static_cast<uint32_t>(*x);
            const uint32_t uy = static_cast<uint32_t>(*y);
            switch (e.op) {
              case Tok::Plus: return *x + *y;
              case Tok::Minus: return *x - *y;
              case Tok::Star:
                return static_cast<int32_t>(ux * uy);
              case Tok::Slash:
                if (*y == 0)
                    return std::nullopt;
                return uns ? static_cast<int32_t>(ux / uy) : *x / *y;
              case Tok::Percent:
                if (*y == 0)
                    return std::nullopt;
                return uns ? static_cast<int32_t>(ux % uy) : *x % *y;
              case Tok::Shl:
                return static_cast<int32_t>(ux << (uy & 31));
              case Tok::Shr:
                return e.kids[0]->ty.isUnsignedTy()
                    ? static_cast<int32_t>(ux >> (uy & 31))
                    : (*x >> (uy & 31));
              case Tok::Amp: return *x & *y;
              case Tok::Pipe: return *x | *y;
              case Tok::Caret: return *x ^ *y;
              case Tok::Lt:
                return uns ? (ux < uy) : (*x < *y);
              case Tok::Gt:
                return uns ? (ux > uy) : (*x > *y);
              case Tok::Le:
                return uns ? (ux <= uy) : (*x <= *y);
              case Tok::Ge:
                return uns ? (ux >= uy) : (*x >= *y);
              case Tok::EqEq: return *x == *y;
              case Tok::NotEq: return *x != *y;
              case Tok::AndAnd: return *x && *y;
              case Tok::OrOr: return *x || *y;
              default: return std::nullopt;
            }
          }
          default:
            return std::nullopt;
        }
    }

    // ---- locations ----

    const Loc &
    locOf(const Symbol *sym)
    {
        auto it = locs.find(sym->id);
        if (it != locs.end())
            return it->second;
        panic("no location for symbol '%s'", sym->name.c_str());
    }

    void
    bindLocal(Symbol *sym)
    {
        Loc loc;
        const bool memory = opts.spillAll || sym->addressTaken ||
            sym->type.isArray();
        if (memory) {
            loc.kind = Loc::Kind::Slot;
            loc.index = fn.newSlot(sym->type.sizeInBytes());
        } else {
            loc.kind = Loc::Kind::Vreg;
            loc.index = fn.newVreg();
        }
        locs[sym->id] = loc;
    }

    // ---- function lowering ----

    IrFunction
    lowerFunction(const Function &f)
    {
        fn = IrFunction{};
        fn.name = f.name;
        fn.isVoid = f.retType.isVoid();
        astFn = &f;
        labelCounter = 0;
        locs.clear();
        breakLabels.clear();
        continueLabels.clear();

        for (const DeclVar &p : f.params) {
            bindLocal(p.sym);
            const Loc &loc = locs[p.sym->id];
            if (loc.kind == Loc::Kind::Vreg) {
                fn.paramVregs.push_back(loc.index);
                fn.paramSlots.push_back(-1);
            } else {
                fn.paramVregs.push_back(-1);
                fn.paramSlots.push_back(loc.index);
            }
        }

        lowerStmt(*f.body);
        // Implicit return for void functions / fallen-off ends.
        IrInstr &ret = emit(IrOp::Ret);
        ret.a = fn.isVoid ? -1 : emitConstForRet();
        return std::move(fn);
    }

    int
    emitConstForRet()
    {
        // Falling off a non-void function returns 0 (defined here so
        // the machine state stays deterministic).
        return kZeroVreg;
    }

    // ---- statements ----

    void
    lowerStmt(const Stmt &s)
    {
        switch (s.kind) {
          case StmtKind::Empty:
            return;
          case StmtKind::Block:
            for (const StmtPtr &sub : s.stmts)
                lowerStmt(*sub);
            return;
          case StmtKind::Expr:
            genExpr(*s.expr);
            return;
          case StmtKind::Decl:
            lowerDecl(s);
            return;
          case StmtKind::If:
            lowerIf(s);
            return;
          case StmtKind::While:
            lowerWhile(s);
            return;
          case StmtKind::DoWhile:
            lowerDoWhile(s);
            return;
          case StmtKind::For:
            lowerFor(s);
            return;
          case StmtKind::Return: {
            // Evaluate first: emit() may reallocate the code vector.
            const int value = s.expr ? genExpr(*s.expr) : -1;
            IrInstr &in = emit(IrOp::Ret);
            in.a = value;
            return;
          }
          case StmtKind::Break:
            if (breakLabels.empty())
                throw CompileError(s.line, "break outside loop");
            emitJump(breakLabels.back());
            return;
          case StmtKind::Continue:
            if (continueLabels.empty())
                throw CompileError(s.line, "continue outside loop");
            emitJump(continueLabels.back());
            return;
        }
    }

    void
    lowerDecl(const Stmt &s)
    {
        for (const DeclVar &dv : s.decls) {
            bindLocal(dv.sym);
            const Loc &loc = locs[dv.sym->id];
            if (dv.hasArrayInit) {
                // Element-wise stores of the initializer (stack
                // memory is not zeroed, so every element is written).
                const unsigned esize = dv.type.scalarSize();
                int base = emitBinI(IrOp::AddrLocal, -1, loc.index);
                for (size_t i = 0; i < dv.arrayInit.size(); ++i) {
                    int v = emitConst(dv.arrayInit[i]);
                    IrInstr &st = emit(IrOp::Store);
                    st.a = v;
                    st.b = base;
                    st.imm = static_cast<int64_t>(i * esize);
                    st.width = static_cast<uint8_t>(esize);
                }
            } else if (dv.init) {
                int v = genExpr(*dv.init);
                // Register-resident char/short locals hold their
                // value sign-extended, as a store+load would produce.
                if (loc.kind == Loc::Kind::Vreg)
                    v = truncateForType(v, dv.type);
                storeToLoc(loc, dv.type, v);
            }
        }
    }

    void
    storeToLoc(const Loc &loc, const Type &type, int value)
    {
        if (loc.kind == Loc::Kind::Vreg) {
            emitCopyTo(loc.index, value);
            return;
        }
        int base = emitBinI(IrOp::AddrLocal, -1, loc.index);
        IrInstr &st = emit(IrOp::Store);
        st.a = value;
        st.b = base;
        st.imm = 0;
        st.width = static_cast<uint8_t>(type.scalarSize());
    }

    void
    lowerIf(const Stmt &s)
    {
        const std::string else_l = newLabel("else");
        const std::string end_l = newLabel("endif");
        genCondBranch(*s.expr, s.elseBody ? else_l : end_l, false);
        lowerStmt(*s.body);
        if (s.elseBody) {
            emitJump(end_l);
            emitLabel(else_l);
            lowerStmt(*s.elseBody);
        }
        emitLabel(end_l);
    }

    void
    lowerWhile(const Stmt &s)
    {
        const std::string head = newLabel("while");
        const std::string end_l = newLabel("endwhile");
        emitLabel(head);
        genCondBranch(*s.expr, end_l, false);
        breakLabels.push_back(end_l);
        continueLabels.push_back(head);
        lowerStmt(*s.body);
        breakLabels.pop_back();
        continueLabels.pop_back();
        emitJump(head);
        emitLabel(end_l);
    }

    void
    lowerDoWhile(const Stmt &s)
    {
        const std::string head = newLabel("do");
        const std::string cond_l = newLabel("docond");
        const std::string end_l = newLabel("enddo");
        emitLabel(head);
        breakLabels.push_back(end_l);
        continueLabels.push_back(cond_l);
        lowerStmt(*s.body);
        breakLabels.pop_back();
        continueLabels.pop_back();
        emitLabel(cond_l);
        genCondBranch(*s.expr, head, true);
        emitLabel(end_l);
    }

    void
    lowerFor(const Stmt &s)
    {
        const std::string head = newLabel("for");
        const std::string step_l = newLabel("forstep");
        const std::string end_l = newLabel("endfor");
        if (s.init)
            lowerStmt(*s.init);
        emitLabel(head);
        if (s.expr)
            genCondBranch(*s.expr, end_l, false);
        breakLabels.push_back(end_l);
        continueLabels.push_back(step_l);
        lowerStmt(*s.body);
        breakLabels.pop_back();
        continueLabels.pop_back();
        emitLabel(step_l);
        if (s.stepExpr)
            genExpr(*s.stepExpr);
        emitJump(head);
        emitLabel(end_l);
    }

    /** Branch to @p target when the condition matches @p on_true. */
    void
    genCondBranch(const Expr &e, const std::string &target,
                  bool on_true)
    {
        if (auto c = tryConst(e)) {
            if ((*c != 0) == on_true)
                emitJump(target);
            return;
        }
        if (e.kind == ExprKind::Unary && e.op == Tok::Bang) {
            genCondBranch(*e.kids[0], target, !on_true);
            return;
        }
        if (e.kind == ExprKind::Binary &&
            (e.op == Tok::AndAnd || e.op == Tok::OrOr)) {
            const bool is_and = e.op == Tok::AndAnd;
            if (is_and == on_true) {
                // Both legs must reach target: short-circuit via skip.
                const std::string skip = newLabel("sc");
                genCondBranch(*e.kids[0], skip, !on_true);
                genCondBranch(*e.kids[1], target, on_true);
                emitLabel(skip);
            } else {
                genCondBranch(*e.kids[0], target, on_true);
                genCondBranch(*e.kids[1], target, on_true);
            }
            return;
        }
        if (e.kind == ExprKind::Binary && isComparison(e.op)) {
            Cond cc;
            int a, b;
            lowerComparison(e, cc, a, b);
            emitBranch(on_true ? cc : negate(cc), a, b, target);
            return;
        }
        int v = genExpr(e);
        emitBranch(on_true ? Cond::Ne : Cond::Eq, v, kZeroVreg,
                   target);
    }

    static bool
    isComparison(Tok t)
    {
        switch (t) {
          case Tok::Lt:
          case Tok::Gt:
          case Tok::Le:
          case Tok::Ge:
          case Tok::EqEq:
          case Tok::NotEq:
            return true;
          default:
            return false;
        }
    }

    static Cond
    negate(Cond cc)
    {
        switch (cc) {
          case Cond::Eq: return Cond::Ne;
          case Cond::Ne: return Cond::Eq;
          case Cond::LtS: return Cond::GeS;
          case Cond::GeS: return Cond::LtS;
          case Cond::LtU: return Cond::GeU;
          case Cond::GeU: return Cond::LtU;
        }
        panic("unreachable");
    }

    /** Lower "a <op> b" into cc(a, b) with operand swap for >/<=. */
    void
    lowerComparison(const Expr &e, Cond &cc, int &a, int &b)
    {
        const bool uns = e.kids[0]->ty.isUnsignedTy() ||
            e.kids[1]->ty.isUnsignedTy() ||
            e.kids[0]->ty.isArray() || e.kids[1]->ty.isArray();
        int lhs = genExpr(*e.kids[0]);
        int rhs = genExpr(*e.kids[1]);
        switch (e.op) {
          case Tok::EqEq: cc = Cond::Eq; a = lhs; b = rhs; break;
          case Tok::NotEq: cc = Cond::Ne; a = lhs; b = rhs; break;
          case Tok::Lt:
            cc = uns ? Cond::LtU : Cond::LtS;
            a = lhs; b = rhs;
            break;
          case Tok::Ge:
            cc = uns ? Cond::GeU : Cond::GeS;
            a = lhs; b = rhs;
            break;
          case Tok::Gt:
            cc = uns ? Cond::LtU : Cond::LtS;
            a = rhs; b = lhs;
            break;
          case Tok::Le:
            cc = uns ? Cond::GeU : Cond::GeS;
            a = rhs; b = lhs;
            break;
          default:
            panic("lowerComparison: not a comparison");
        }
    }

    // ---- expressions ----

    /** Lower an expression to a vreg holding its value. */
    int
    genExpr(const Expr &e)
    {
        if (auto c = tryConst(e))
            return emitConst(*c);
        switch (e.kind) {
          case ExprKind::IntLit:
            return emitConst(e.ival);
          case ExprKind::StrLit: {
            IrInstr &in = emit(IrOp::AddrGlobal);
            in.dst = fn.newVreg();
            in.sym = e.name;
            return in.dst;
          }
          case ExprKind::Var:
            return genVar(e);
          case ExprKind::Unary:
            return genUnary(e);
          case ExprKind::Binary:
            return genBinary(e);
          case ExprKind::Assign:
            return genAssign(e);
          case ExprKind::Cond:
            return genCondExpr(e);
          case ExprKind::Call:
            return genCall(e);
          case ExprKind::Index:
            return loadFrom(genAddr(e), e.ty);
          case ExprKind::Cast:
            return genCast(e);
        }
        panic("unreachable expression kind");
    }

    int
    genVar(const Expr &e)
    {
        const Symbol *sym = e.sym;
        if (sym->kind == SymKind::Global) {
            IrInstr &in = emit(IrOp::AddrGlobal);
            in.dst = fn.newVreg();
            in.sym = sym->name;
            if (e.ty.isArray())
                return in.dst; // decays to its address
            return loadFrom(in.dst, e.ty);
        }
        const Loc &loc = locOf(sym);
        if (loc.kind == Loc::Kind::Vreg)
            return loc.index;
        int base = emitBinI(IrOp::AddrLocal, -1, loc.index);
        if (e.ty.isArray())
            return base;
        return loadFrom(base, e.ty);
    }

    /** Load a scalar of type @p ty from address vreg @p addr. */
    int
    loadFrom(int addr, const Type &ty)
    {
        if (ty.isArray())
            return addr; // arrays load as their address
        IrInstr &in = emit(IrOp::Load);
        in.dst = fn.newVreg();
        in.a = addr;
        in.imm = 0;
        in.width = static_cast<uint8_t>(ty.scalarSize());
        in.signExt = !ty.isUnsignedTy() && in.width < 4;
        return in.dst;
    }

    /** Address of an lvalue expression. */
    int
    genAddr(const Expr &e)
    {
        switch (e.kind) {
          case ExprKind::Var: {
            const Symbol *sym = e.sym;
            if (sym->kind == SymKind::Global) {
                IrInstr &in = emit(IrOp::AddrGlobal);
                in.dst = fn.newVreg();
                in.sym = sym->name;
                return in.dst;
            }
            const Loc &loc = locOf(sym);
            if (loc.kind != Loc::Kind::Slot)
                panic("address of register variable '%s'",
                      sym->name.c_str());
            return emitBinI(IrOp::AddrLocal, -1, loc.index);
          }
          case ExprKind::Index: {
            const Expr &base_e = *e.kids[0];
            int base;
            if (base_e.ty.isArray())
                base = base_e.kind == ExprKind::Var ||
                       base_e.kind == ExprKind::Index
                    ? genAddrOrValue(base_e) : genExpr(base_e);
            else
                base = genExpr(base_e);
            const unsigned stride = base_e.ty.strideBytes();
            // Constant index folds straight into the offset.
            if (auto c = tryConst(*e.kids[1])) {
                const int64_t off =
                    static_cast<int64_t>(*c) * stride;
                if (fitsSigned(off, 12) && off != 0)
                    return emitBinI(IrOp::AddI, base, off);
                if (off == 0)
                    return base;
            }
            int idx = genExpr(*e.kids[1]);
            int scaled = mulByConst(idx, static_cast<int32_t>(stride));
            return emitBin(IrOp::Add, base, scaled);
          }
          case ExprKind::Unary:
            if (e.op == Tok::Star)
                return genExpr(*e.kids[0]);
            break;
          case ExprKind::StrLit: {
            IrInstr &in = emit(IrOp::AddrGlobal);
            in.dst = fn.newVreg();
            in.sym = e.name;
            return in.dst;
          }
          default:
            break;
        }
        throw CompileError(e.line, "expression is not addressable");
    }

    /** For array-typed sub-expressions: their address. */
    int
    genAddrOrValue(const Expr &e)
    {
        if (e.ty.isArray())
            return genAddr(e);
        return genExpr(e);
    }

    int
    genUnary(const Expr &e)
    {
        const Expr &k = *e.kids[0];
        switch (e.op) {
          case Tok::Minus:
            return emitBin(IrOp::Sub, kZeroVreg, genExpr(k));
          case Tok::Tilde:
            return emitBinI(IrOp::XorI, genExpr(k), -1);
          case Tok::Bang: {
            // !x == (x unsigned< 1)
            const int v = genExpr(k);
            IrInstr &in = emit(IrOp::SetCcI);
            in.dst = fn.newVreg();
            in.a = v;
            in.imm = 1;
            in.cc = Cond::LtU;
            return in.dst;
          }
          case Tok::Star:
            return loadFrom(genExpr(k), e.ty);
          case Tok::Amp:
            return genAddr(k);
          case Tok::PlusPlus:
          case Tok::MinusMinus:
            return genIncDec(e);
          default:
            panic("genUnary: unexpected operator");
        }
    }

    int
    genIncDec(const Expr &e)
    {
        const Expr &lv = *e.kids[0];
        const int64_t delta_base =
            e.op == Tok::PlusPlus ? 1 : -1;
        const int64_t delta = lv.ty.isPointer()
            ? delta_base * lv.ty.strideBytes() : delta_base;
        if (lv.kind == ExprKind::Var &&
            lv.sym->kind != SymKind::Global &&
            locOf(lv.sym).kind == Loc::Kind::Vreg) {
            const int var = locOf(lv.sym).index;
            int old = -1;
            if (e.postfix) {
                old = fn.newVreg();
                emitCopyTo(old, var);
            }
            int updated = emitBinI(IrOp::AddI, var, delta);
            emitCopyTo(var, updated);
            return e.postfix ? old : var;
        }
        int addr = genAddr(lv);
        int old = loadFrom(addr, lv.ty);
        int updated = emitBinI(IrOp::AddI, old, delta);
        storeThrough(addr, lv.ty, updated);
        return e.postfix ? old : updated;
    }

    void
    storeThrough(int addr, const Type &ty, int value)
    {
        IrInstr &st = emit(IrOp::Store);
        st.a = value;
        st.b = addr;
        st.imm = 0;
        st.width = static_cast<uint8_t>(ty.scalarSize());
    }

    int
    genBinary(const Expr &e)
    {
        if (e.op == Tok::AndAnd || e.op == Tok::OrOr)
            return genLogical(e);
        if (isComparison(e.op)) {
            Cond cc;
            int a, b;
            lowerComparison(e, cc, a, b);
            return materializeCc(cc, a, b);
        }
        return genArith(e.op, *e.kids[0], *e.kids[1], e.ty);
    }

    int
    materializeCc(Cond cc, int a, int b)
    {
        // slt/sltu produce LtS/LtU directly; the others go through
        // xor/sltiu/xori sequences (the canonical RISC-V idioms).
        switch (cc) {
          case Cond::LtS:
          case Cond::LtU: {
            IrInstr &in = emit(IrOp::SetCc);
            in.dst = fn.newVreg();
            in.a = a;
            in.b = b;
            in.cc = cc;
            return in.dst;
          }
          case Cond::GeS:
          case Cond::GeU: {
            int lt = materializeCc(
                cc == Cond::GeS ? Cond::LtS : Cond::LtU, a, b);
            return emitBinI(IrOp::XorI, lt, 1);
          }
          case Cond::Eq: {
            int x = emitBin(IrOp::Xor, a, b);
            IrInstr &in = emit(IrOp::SetCcI);
            in.dst = fn.newVreg();
            in.a = x;
            in.imm = 1;
            in.cc = Cond::LtU;
            return in.dst;
          }
          case Cond::Ne: {
            int x = emitBin(IrOp::Xor, a, b);
            IrInstr &in = emit(IrOp::SetCc);
            in.dst = fn.newVreg();
            in.a = kZeroVreg;
            in.b = x;
            in.cc = Cond::LtU; // 0 <u x
            return in.dst;
          }
        }
        panic("unreachable");
    }

    int
    genLogical(const Expr &e)
    {
        const std::string false_l = newLabel("lfalse");
        const std::string end_l = newLabel("lend");
        int result = fn.newVreg();
        genCondBranch(e, false_l, false);
        emitCopyTo(result, emitConst(1));
        emitJump(end_l);
        emitLabel(false_l);
        emitCopyTo(result, emitConst(0));
        emitLabel(end_l);
        return result;
    }

    int
    genArith(Tok op, const Expr &lhs_e, const Expr &rhs_e,
             const Type &result_ty)
    {
        // Pointer arithmetic scales the integer side by the stride.
        const Type lt = lhs_e.ty;
        const Type rt = rhs_e.ty;
        const bool l_ptr = lt.isPointer() || lt.isArray();
        const bool r_ptr = rt.isPointer() || rt.isArray();
        if ((op == Tok::Plus || op == Tok::Minus) && (l_ptr || r_ptr)) {
            if (l_ptr && r_ptr) {
                // ptr - ptr: byte difference / stride.
                int a = genAddrOrValue(lhs_e);
                int b = genAddrOrValue(rhs_e);
                int diff = emitBin(IrOp::Sub, a, b);
                const unsigned stride = lt.strideBytes();
                if (stride == 1)
                    return diff;
                if (isPow2(stride))
                    return emitBinI(IrOp::ShrAI, diff,
                                    log2Of(stride));
                return emitHelperCall(
                    "__divsi3", diff,
                    emitConst(static_cast<int32_t>(stride)));
            }
            const Expr &ptr_e = l_ptr ? lhs_e : rhs_e;
            const Expr &int_e = l_ptr ? rhs_e : lhs_e;
            int base = genAddrOrValue(ptr_e);
            const unsigned stride = ptr_e.ty.strideBytes();
            if (auto c = tryConst(int_e)) {
                int64_t off = static_cast<int64_t>(*c) * stride;
                if (op == Tok::Minus)
                    off = -off;
                if (off == 0)
                    return base;
                if (fitsSigned(off, 12))
                    return emitBinI(IrOp::AddI, base, off);
                int off_v = emitConst(off);
                return emitBin(IrOp::Add, base, off_v);
            }
            int idx = genExpr(int_e);
            int scaled = mulByConst(idx, static_cast<int32_t>(stride));
            return emitBin(op == Tok::Plus ? IrOp::Add : IrOp::Sub,
                           base, scaled);
        }

        const bool uns = result_ty.isUnsignedTy() ||
            lt.isUnsignedTy() || rt.isUnsignedTy();

        // Immediate forms when the right side is constant.
        auto rc = tryConst(rhs_e);
        auto lc = tryConst(lhs_e);
        switch (op) {
          case Tok::Plus:
            if (rc && fitsSigned(*rc, 12))
                return emitBinI(IrOp::AddI, genExpr(lhs_e), *rc);
            if (lc && fitsSigned(*lc, 12))
                return emitBinI(IrOp::AddI, genExpr(rhs_e), *lc);
            return emitBin(IrOp::Add, genExpr(lhs_e),
                           genExpr(rhs_e));
          case Tok::Minus:
            if (rc && fitsSigned(-static_cast<int64_t>(*rc), 12))
                return emitBinI(IrOp::AddI, genExpr(lhs_e),
                                -static_cast<int64_t>(*rc));
            return emitBin(IrOp::Sub, genExpr(lhs_e),
                           genExpr(rhs_e));
          case Tok::Amp:
            if (rc && fitsSigned(*rc, 12))
                return emitBinI(IrOp::AndI, genExpr(lhs_e), *rc);
            if (lc && fitsSigned(*lc, 12))
                return emitBinI(IrOp::AndI, genExpr(rhs_e), *lc);
            return emitBin(IrOp::And, genExpr(lhs_e),
                           genExpr(rhs_e));
          case Tok::Pipe:
            if (rc && fitsSigned(*rc, 12))
                return emitBinI(IrOp::OrI, genExpr(lhs_e), *rc);
            if (lc && fitsSigned(*lc, 12))
                return emitBinI(IrOp::OrI, genExpr(rhs_e), *lc);
            return emitBin(IrOp::Or, genExpr(lhs_e),
                           genExpr(rhs_e));
          case Tok::Caret:
            if (rc && fitsSigned(*rc, 12))
                return emitBinI(IrOp::XorI, genExpr(lhs_e), *rc);
            if (lc && fitsSigned(*lc, 12))
                return emitBinI(IrOp::XorI, genExpr(rhs_e), *lc);
            return emitBin(IrOp::Xor, genExpr(lhs_e),
                           genExpr(rhs_e));
          case Tok::Shl:
            if (rc)
                return emitBinI(IrOp::ShlI, genExpr(lhs_e),
                                *rc & 31);
            return emitBin(IrOp::Shl, genExpr(lhs_e),
                           genExpr(rhs_e));
          case Tok::Shr: {
            const bool u = lhs_e.ty.isUnsignedTy();
            if (rc)
                return emitBinI(u ? IrOp::ShrLI : IrOp::ShrAI,
                                genExpr(lhs_e), *rc & 31);
            return emitBin(u ? IrOp::ShrL : IrOp::ShrA,
                           genExpr(lhs_e), genExpr(rhs_e));
          }
          case Tok::Star:
            if (rc && opts.inlineMulConst &&
                (!opts.useCustomMul ||
                 isPow2(static_cast<uint32_t>(*rc))))
                return mulByConst(genExpr(lhs_e), *rc);
            if (lc && opts.inlineMulConst &&
                (!opts.useCustomMul ||
                 isPow2(static_cast<uint32_t>(*lc))))
                return mulByConst(genExpr(rhs_e), *lc);
            if (opts.useCustomMul)
                return emitBin(IrOp::Mul, genExpr(lhs_e),
                               genExpr(rhs_e));
            return emitHelperCall("__mulsi3", genExpr(lhs_e),
                                  genExpr(rhs_e));
          case Tok::Slash:
            return genDiv(lhs_e, rhs_e, uns, /*remainder=*/false);
          case Tok::Percent:
            return genDiv(lhs_e, rhs_e, uns, /*remainder=*/true);
          default:
            panic("genArith: unexpected operator");
        }
    }

    int
    genDiv(const Expr &lhs_e, const Expr &rhs_e, bool uns,
           bool remainder)
    {
        auto rc = tryConst(rhs_e);
        if (rc && *rc > 0 && isPow2(static_cast<uint32_t>(*rc))) {
            const unsigned k = log2Of(static_cast<uint32_t>(*rc));
            if (uns) {
                int a = genExpr(lhs_e);
                if (remainder) {
                    const uint32_t mask = (1u << k) - 1;
                    if (mask <= 2047)
                        return emitBinI(IrOp::AndI, a, mask);
                    int m = emitConst(static_cast<int32_t>(mask));
                    return emitBin(IrOp::And, a, m);
                }
                return k == 0 ? a : emitBinI(IrOp::ShrLI, a, k);
            }
            if (!remainder && opts.inlineDivPow2 && k > 0) {
                // Branchless signed divide by 2^k, round toward 0:
                //   bias = (a >> 31) >>u (32-k); (a + bias) >> k
                int a = genExpr(lhs_e);
                int sign = emitBinI(IrOp::ShrAI, a, 31);
                int bias = emitBinI(IrOp::ShrLI, sign, 32 - k);
                int biased = emitBin(IrOp::Add, a, bias);
                return emitBinI(IrOp::ShrAI, biased, k);
            }
        }
        const char *helper = remainder
            ? (uns ? "__umodsi3" : "__modsi3")
            : (uns ? "__udivsi3" : "__divsi3");
        return emitHelperCall(helper, genExpr(lhs_e),
                              genExpr(rhs_e));
    }

    /** x * c through shifts and adds; falls back to __mulsi3 (or a
     *  single cmul when the custom block is available). */
    int
    mulByConst(int x, int32_t c)
    {
        if (opts.useCustomMul &&
            !isPow2(static_cast<uint32_t>(c)) && c != 0 && c != 1 &&
            c != -1)
            return emitBin(IrOp::Mul, x, emitConst(c));
        if (c == 0)
            return kZeroVreg;
        if (c == 1)
            return x;
        if (c == -1)
            return emitBin(IrOp::Sub, kZeroVreg, x);
        const bool neg = c < 0;
        uint32_t m = neg ? static_cast<uint32_t>(-c)
            : static_cast<uint32_t>(c);
        int produced = -1;
        if (isPow2(m)) {
            produced = emitBinI(IrOp::ShlI, x, log2Of(m));
        } else if (__builtin_popcount(m) <=
                   (opts.inlineMulConst ? opts.mulMaxOps : 0)) {
            // Sum of shifted copies, highest bit first.
            for (int bit_i = 31; bit_i >= 0; --bit_i) {
                if (!(m & (1u << bit_i)))
                    continue;
                int term = bit_i == 0
                    ? x : emitBinI(IrOp::ShlI, x, bit_i);
                produced = produced < 0
                    ? term : emitBin(IrOp::Add, produced, term);
            }
        } else if (isPow2(m + 1) && opts.inlineMulConst) {
            // (x << k) - x
            int shifted = emitBinI(IrOp::ShlI, x, log2Of(m + 1));
            produced = emitBin(IrOp::Sub, shifted, x);
        } else {
            produced = emitHelperCall("__mulsi3", x,
                                      emitConst(c));
            return produced; // sign handled by 2's complement mul
        }
        if (neg)
            produced = emitBin(IrOp::Sub, kZeroVreg, produced);
        return produced;
    }

    int
    genAssign(const Expr &e)
    {
        const Expr &lhs = *e.kids[0];
        const Expr &rhs = *e.kids[1];
        const Tok base_op = compoundBaseOp(e.op);

        // Register-resident scalar variable.
        if (lhs.kind == ExprKind::Var &&
            lhs.sym->kind != SymKind::Global &&
            locOf(lhs.sym).kind == Loc::Kind::Vreg) {
            const int var = locOf(lhs.sym).index;
            int value;
            if (base_op == Tok::End) {
                value = genExpr(rhs);
            } else {
                value = genArithFromParts(base_op, lhs, var, rhs);
            }
            value = truncateForType(value, lhs.ty);
            emitCopyTo(var, value);
            return var;
        }

        // Memory-resident lvalue: compute the address once.
        int addr = genAddr(lhs);
        int value;
        if (base_op == Tok::End) {
            value = genExpr(rhs);
        } else {
            int old = loadFrom(addr, lhs.ty);
            value = genArithFromParts(base_op, lhs, old, rhs);
        }
        storeThrough(addr, lhs.ty, value);
        return value;
    }

    /** Arithmetic where the lhs value is already in a vreg. */
    int
    genArithFromParts(Tok op, const Expr &lhs_e, int lhs_v,
                      const Expr &rhs_e)
    {
        // Wrap the lhs vreg so genArith's operand analysis still sees
        // the types; constants on the rhs keep their immediate forms.
        const bool uns = lhs_e.ty.isUnsignedTy() ||
            rhs_e.ty.isUnsignedTy();
        auto rc = tryConst(rhs_e);
        const bool l_ptr = lhs_e.ty.isPointer();
        const unsigned stride =
            l_ptr ? lhs_e.ty.strideBytes() : 1;
        switch (op) {
          case Tok::Plus: {
            if (rc) {
                int64_t off =
                    static_cast<int64_t>(*rc) * stride;
                if (fitsSigned(off, 12))
                    return emitBinI(IrOp::AddI, lhs_v, off);
            }
            int r = genExpr(rhs_e);
            if (l_ptr && stride != 1)
                r = mulByConst(r, static_cast<int32_t>(stride));
            return emitBin(IrOp::Add, lhs_v, r);
          }
          case Tok::Minus: {
            if (rc) {
                int64_t off =
                    -static_cast<int64_t>(*rc) * stride;
                if (fitsSigned(off, 12))
                    return emitBinI(IrOp::AddI, lhs_v, off);
            }
            int r = genExpr(rhs_e);
            if (l_ptr && stride != 1)
                r = mulByConst(r, static_cast<int32_t>(stride));
            return emitBin(IrOp::Sub, lhs_v, r);
          }
          case Tok::Amp:
            if (rc && fitsSigned(*rc, 12))
                return emitBinI(IrOp::AndI, lhs_v, *rc);
            return emitBin(IrOp::And, lhs_v, genExpr(rhs_e));
          case Tok::Pipe:
            if (rc && fitsSigned(*rc, 12))
                return emitBinI(IrOp::OrI, lhs_v, *rc);
            return emitBin(IrOp::Or, lhs_v, genExpr(rhs_e));
          case Tok::Caret:
            if (rc && fitsSigned(*rc, 12))
                return emitBinI(IrOp::XorI, lhs_v, *rc);
            return emitBin(IrOp::Xor, lhs_v, genExpr(rhs_e));
          case Tok::Shl:
            if (rc)
                return emitBinI(IrOp::ShlI, lhs_v, *rc & 31);
            return emitBin(IrOp::Shl, lhs_v, genExpr(rhs_e));
          case Tok::Shr: {
            const bool u = lhs_e.ty.isUnsignedTy();
            if (rc)
                return emitBinI(u ? IrOp::ShrLI : IrOp::ShrAI,
                                lhs_v, *rc & 31);
            return emitBin(u ? IrOp::ShrL : IrOp::ShrA, lhs_v,
                           genExpr(rhs_e));
          }
          case Tok::Star:
            if (rc && opts.inlineMulConst &&
                (!opts.useCustomMul ||
                 isPow2(static_cast<uint32_t>(*rc))))
                return mulByConst(lhs_v, *rc);
            if (opts.useCustomMul)
                return emitBin(IrOp::Mul, lhs_v, genExpr(rhs_e));
            return emitHelperCall("__mulsi3", lhs_v,
                                  genExpr(rhs_e));
          case Tok::Slash: {
            const char *h = uns ? "__udivsi3" : "__divsi3";
            if (rc && *rc > 0 &&
                isPow2(static_cast<uint32_t>(*rc)) && uns)
                return emitBinI(IrOp::ShrLI, lhs_v,
                                log2Of(static_cast<uint32_t>(*rc)));
            return emitHelperCall(h, lhs_v, genExpr(rhs_e));
          }
          case Tok::Percent: {
            const char *h = uns ? "__umodsi3" : "__modsi3";
            if (rc && *rc > 0 &&
                isPow2(static_cast<uint32_t>(*rc)) && uns) {
                const uint32_t mask =
                    static_cast<uint32_t>(*rc) - 1;
                if (mask <= 2047)
                    return emitBinI(IrOp::AndI, lhs_v, mask);
            }
            return emitHelperCall(h, lhs_v, genExpr(rhs_e));
          }
          default:
            panic("genArithFromParts: unexpected operator");
        }
    }

    static Tok
    compoundBaseOp(Tok t)
    {
        switch (t) {
          case Tok::Assign: return Tok::End;
          case Tok::PlusAssign: return Tok::Plus;
          case Tok::MinusAssign: return Tok::Minus;
          case Tok::StarAssign: return Tok::Star;
          case Tok::SlashAssign: return Tok::Slash;
          case Tok::PercentAssign: return Tok::Percent;
          case Tok::AmpAssign: return Tok::Amp;
          case Tok::PipeAssign: return Tok::Pipe;
          case Tok::CaretAssign: return Tok::Caret;
          case Tok::ShlAssign: return Tok::Shl;
          case Tok::ShrAssign: return Tok::Shr;
          default: panic("not an assignment operator");
        }
    }

    /** Narrow a value to char/short width when it is kept in a
     *  register (C assignment semantics). */
    int
    truncateForType(int value, const Type &ty)
    {
        if (ty.isPointer() || ty.scalarSize() == 4)
            return value;
        const unsigned bits_n = ty.scalarSize() * 8;
        if (ty.isUnsignedTy()) {
            if (bits_n == 8)
                return emitBinI(IrOp::AndI, value, 0xFF);
            int t = emitBinI(IrOp::ShlI, value, 32 - bits_n);
            return emitBinI(IrOp::ShrLI, t, 32 - bits_n);
        }
        int t = emitBinI(IrOp::ShlI, value, 32 - bits_n);
        return emitBinI(IrOp::ShrAI, t, 32 - bits_n);
    }

    int
    genCondExpr(const Expr &e)
    {
        const std::string false_l = newLabel("cfalse");
        const std::string end_l = newLabel("cend");
        int result = fn.newVreg();
        genCondBranch(*e.kids[0], false_l, false);
        emitCopyTo(result, genExpr(*e.kids[1]));
        emitJump(end_l);
        emitLabel(false_l);
        emitCopyTo(result, genExpr(*e.kids[2]));
        emitLabel(end_l);
        return result;
    }

    int
    genCall(const Expr &e)
    {
        std::vector<int> args;
        args.reserve(e.kids.size());
        for (const ExprPtr &arg : e.kids)
            args.push_back(genAddrOrValue(*arg));
        const bool has_result = !e.ty.isVoid();
        return emitCall(e.name, std::move(args), has_result);
    }

    int
    genCast(const Expr &e)
    {
        int v = genExpr(*e.kids[0]);
        return truncateForType(v, e.castTy);
    }
};

} // namespace

LowerResult
lowerUnit(const TranslationUnit &unit, const LowerOptions &options)
{
    return Lowerer(unit, options).run();
}

} // namespace rissp::minic
