#include "compiler/ast.hh"

#include "util/logging.hh"

namespace rissp::minic
{

unsigned
baseSize(BaseTy b)
{
    switch (b) {
      case BaseTy::Void: return 0;
      case BaseTy::Int:
      case BaseTy::UInt: return 4;
      case BaseTy::Short:
      case BaseTy::UShort: return 2;
      case BaseTy::Char:
      case BaseTy::UChar: return 1;
    }
    return 4;
}

bool
baseUnsigned(BaseTy b)
{
    return b == BaseTy::UInt || b == BaseTy::UChar ||
        b == BaseTy::UShort;
}

unsigned
Type::scalarSize() const
{
    if (ptr > 0)
        return 4;
    return baseSize(base);
}

unsigned
Type::sizeInBytes() const
{
    unsigned n = scalarSize();
    for (int d : dims)
        n *= static_cast<unsigned>(d);
    return n;
}

bool
Type::isUnsignedTy() const
{
    if (ptr > 0)
        return true; // pointers compare unsigned
    return baseUnsigned(base);
}

Type
Type::subscripted() const
{
    Type t = *this;
    if (!t.dims.empty()) {
        t.dims.erase(t.dims.begin());
        return t;
    }
    if (t.ptr > 0) {
        --t.ptr;
        return t;
    }
    panic("subscripted() on non-indexable type");
}

unsigned
Type::strideBytes() const
{
    return subscripted().sizeInBytes();
}

Type
Type::decayed() const
{
    if (!isArray())
        return *this;
    // Only 1-D arrays decay to pointers here; multi-dimensional
    // arrays are indexed in place (the parser rejects passing them by
    // value, which MiniC does not support).
    if (dims.size() != 1)
        panic("decayed() on multi-dimensional array");
    Type t = subscripted();
    ++t.ptr;
    return t;
}

} // namespace rissp::minic
