#include "compiler/lexer.hh"

#include <cctype>
#include <unordered_map>

#include "util/logging.hh"

namespace rissp::minic
{

CompileError::CompileError(int line, const std::string &msg)
    : std::runtime_error(strFormat("line %d: %s", line, msg.c_str())),
      errLine(line)
{
}

std::string
tokName(Tok kind)
{
    switch (kind) {
      case Tok::End: return "end of input";
      case Tok::Ident: return "identifier";
      case Tok::Number: return "number";
      case Tok::StringLit: return "string literal";
      case Tok::CharLit: return "character literal";
      case Tok::KwInt: return "'int'";
      case Tok::KwUnsigned: return "'unsigned'";
      case Tok::KwChar: return "'char'";
      case Tok::KwShort: return "'short'";
      case Tok::KwVoid: return "'void'";
      case Tok::KwConst: return "'const'";
      case Tok::KwIf: return "'if'";
      case Tok::KwElse: return "'else'";
      case Tok::KwWhile: return "'while'";
      case Tok::KwFor: return "'for'";
      case Tok::KwDo: return "'do'";
      case Tok::KwReturn: return "'return'";
      case Tok::KwBreak: return "'break'";
      case Tok::KwContinue: return "'continue'";
      case Tok::KwSizeof: return "'sizeof'";
      case Tok::KwStatic: return "'static'";
      case Tok::LParen: return "'('";
      case Tok::RParen: return "')'";
      case Tok::LBrace: return "'{'";
      case Tok::RBrace: return "'}'";
      case Tok::LBracket: return "'['";
      case Tok::RBracket: return "']'";
      case Tok::Comma: return "','";
      case Tok::Semi: return "';'";
      case Tok::Question: return "'?'";
      case Tok::Colon: return "':'";
      case Tok::Assign: return "'='";
      case Tok::Plus: return "'+'";
      case Tok::Minus: return "'-'";
      case Tok::Star: return "'*'";
      case Tok::Slash: return "'/'";
      case Tok::Percent: return "'%'";
      case Tok::Amp: return "'&'";
      case Tok::Pipe: return "'|'";
      case Tok::Caret: return "'^'";
      case Tok::Tilde: return "'~'";
      case Tok::Bang: return "'!'";
      case Tok::Lt: return "'<'";
      case Tok::Gt: return "'>'";
      case Tok::Le: return "'<='";
      case Tok::Ge: return "'>='";
      case Tok::EqEq: return "'=='";
      case Tok::NotEq: return "'!='";
      case Tok::AndAnd: return "'&&'";
      case Tok::OrOr: return "'||'";
      case Tok::Shl: return "'<<'";
      case Tok::Shr: return "'>>'";
      case Tok::PlusAssign: return "'+='";
      case Tok::MinusAssign: return "'-='";
      case Tok::StarAssign: return "'*='";
      case Tok::SlashAssign: return "'/='";
      case Tok::PercentAssign: return "'%='";
      case Tok::AmpAssign: return "'&='";
      case Tok::PipeAssign: return "'|='";
      case Tok::CaretAssign: return "'^='";
      case Tok::ShlAssign: return "'<<='";
      case Tok::ShrAssign: return "'>>='";
      case Tok::PlusPlus: return "'++'";
      case Tok::MinusMinus: return "'--'";
    }
    return "?";
}

namespace
{

const std::unordered_map<std::string, Tok> kKeywords = {
    {"int", Tok::KwInt}, {"unsigned", Tok::KwUnsigned},
    {"char", Tok::KwChar}, {"short", Tok::KwShort},
    {"void", Tok::KwVoid}, {"const", Tok::KwConst},
    {"if", Tok::KwIf}, {"else", Tok::KwElse},
    {"while", Tok::KwWhile}, {"for", Tok::KwFor},
    {"do", Tok::KwDo}, {"return", Tok::KwReturn},
    {"break", Tok::KwBreak}, {"continue", Tok::KwContinue},
    {"sizeof", Tok::KwSizeof}, {"static", Tok::KwStatic},
};

class Lexer
{
  public:
    explicit Lexer(const std::string &src) : source(src) {}

    std::vector<Token>
    run()
    {
        std::vector<Token> out;
        while (true) {
            skipWhitespaceAndComments();
            if (pos >= source.size())
                break;
            out.push_back(next());
        }
        Token end;
        end.kind = Tok::End;
        end.line = line;
        out.push_back(end);
        return out;
    }

  private:
    char peek(size_t ahead = 0) const
    {
        return pos + ahead < source.size() ? source[pos + ahead] : '\0';
    }

    char
    advance()
    {
        char c = source[pos++];
        if (c == '\n')
            ++line;
        return c;
    }

    bool
    match(char c)
    {
        if (peek() == c) {
            advance();
            return true;
        }
        return false;
    }

    void
    skipWhitespaceAndComments()
    {
        while (pos < source.size()) {
            char c = peek();
            if (std::isspace(static_cast<unsigned char>(c))) {
                advance();
            } else if (c == '/' && peek(1) == '/') {
                while (pos < source.size() && peek() != '\n')
                    advance();
            } else if (c == '/' && peek(1) == '*') {
                int start = line;
                advance();
                advance();
                while (pos < source.size() &&
                       !(peek() == '*' && peek(1) == '/'))
                    advance();
                if (pos >= source.size())
                    throw CompileError(start, "unterminated comment");
                advance();
                advance();
            } else {
                break;
            }
        }
    }

    Token
    next()
    {
        Token t;
        t.line = line;
        char c = peek();
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_')
            return lexIdent();
        if (std::isdigit(static_cast<unsigned char>(c)))
            return lexNumber();
        if (c == '"')
            return lexString();
        if (c == '\'')
            return lexChar();
        advance();
        switch (c) {
          case '(': t.kind = Tok::LParen; return t;
          case ')': t.kind = Tok::RParen; return t;
          case '{': t.kind = Tok::LBrace; return t;
          case '}': t.kind = Tok::RBrace; return t;
          case '[': t.kind = Tok::LBracket; return t;
          case ']': t.kind = Tok::RBracket; return t;
          case ',': t.kind = Tok::Comma; return t;
          case ';': t.kind = Tok::Semi; return t;
          case '?': t.kind = Tok::Question; return t;
          case ':': t.kind = Tok::Colon; return t;
          case '~': t.kind = Tok::Tilde; return t;
          case '+':
            t.kind = match('+') ? Tok::PlusPlus
                : match('=') ? Tok::PlusAssign : Tok::Plus;
            return t;
          case '-':
            t.kind = match('-') ? Tok::MinusMinus
                : match('=') ? Tok::MinusAssign : Tok::Minus;
            return t;
          case '*':
            t.kind = match('=') ? Tok::StarAssign : Tok::Star;
            return t;
          case '/':
            t.kind = match('=') ? Tok::SlashAssign : Tok::Slash;
            return t;
          case '%':
            t.kind = match('=') ? Tok::PercentAssign : Tok::Percent;
            return t;
          case '&':
            t.kind = match('&') ? Tok::AndAnd
                : match('=') ? Tok::AmpAssign : Tok::Amp;
            return t;
          case '|':
            t.kind = match('|') ? Tok::OrOr
                : match('=') ? Tok::PipeAssign : Tok::Pipe;
            return t;
          case '^':
            t.kind = match('=') ? Tok::CaretAssign : Tok::Caret;
            return t;
          case '!':
            t.kind = match('=') ? Tok::NotEq : Tok::Bang;
            return t;
          case '=':
            t.kind = match('=') ? Tok::EqEq : Tok::Assign;
            return t;
          case '<':
            if (match('<'))
                t.kind = match('=') ? Tok::ShlAssign : Tok::Shl;
            else
                t.kind = match('=') ? Tok::Le : Tok::Lt;
            return t;
          case '>':
            if (match('>'))
                t.kind = match('=') ? Tok::ShrAssign : Tok::Shr;
            else
                t.kind = match('=') ? Tok::Ge : Tok::Gt;
            return t;
          default:
            throw CompileError(t.line, strFormat(
                "unexpected character '%c'", c));
        }
    }

    Token
    lexIdent()
    {
        Token t;
        t.line = line;
        std::string s;
        while (std::isalnum(static_cast<unsigned char>(peek())) ||
               peek() == '_')
            s += advance();
        auto kw = kKeywords.find(s);
        if (kw != kKeywords.end()) {
            t.kind = kw->second;
        } else {
            t.kind = Tok::Ident;
            t.text = std::move(s);
        }
        return t;
    }

    Token
    lexNumber()
    {
        Token t;
        t.line = line;
        t.kind = Tok::Number;
        int64_t v = 0;
        if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
            advance();
            advance();
            bool any = false;
            while (std::isxdigit(static_cast<unsigned char>(peek()))) {
                char c = advance();
                int d = std::isdigit(static_cast<unsigned char>(c))
                    ? c - '0'
                    : std::tolower(static_cast<unsigned char>(c)) -
                        'a' + 10;
                v = v * 16 + d;
                any = true;
            }
            if (!any)
                throw CompileError(t.line, "bad hex literal");
        } else {
            while (std::isdigit(static_cast<unsigned char>(peek())))
                v = v * 10 + (advance() - '0');
        }
        // Accept (and ignore) integer suffixes.
        while (peek() == 'u' || peek() == 'U' || peek() == 'l' ||
               peek() == 'L')
            advance();
        t.value = v;
        return t;
    }

    char
    lexEscape()
    {
        char c = advance();
        if (c != '\\')
            return c;
        char e = advance();
        switch (e) {
          case 'n': return '\n';
          case 't': return '\t';
          case 'r': return '\r';
          case '0': return '\0';
          case '\\': return '\\';
          case '\'': return '\'';
          case '"': return '"';
          default:
            throw CompileError(line, strFormat(
                "unknown escape '\\%c'", e));
        }
    }

    Token
    lexString()
    {
        Token t;
        t.line = line;
        t.kind = Tok::StringLit;
        advance(); // opening quote
        while (peek() != '"') {
            if (pos >= source.size())
                throw CompileError(t.line, "unterminated string");
            t.text += lexEscape();
        }
        advance(); // closing quote
        return t;
    }

    Token
    lexChar()
    {
        Token t;
        t.line = line;
        t.kind = Tok::CharLit;
        advance(); // opening quote
        t.value = static_cast<unsigned char>(lexEscape());
        if (peek() != '\'')
            throw CompileError(t.line, "unterminated char literal");
        advance();
        return t;
    }

    const std::string &source;
    size_t pos = 0;
    int line = 1;
};

} // namespace

std::vector<Token>
lex(const std::string &source)
{
    return Lexer(source).run();
}

} // namespace rissp::minic
