/**
 * @file
 * IR optimization passes and the per--O-level pass pipelines.
 *
 * The passes are deliberately conservative for a non-SSA IR: value
 * facts are only attached to single-definition vregs, which lowering
 * produces for every expression temporary (named variables are the
 * multi-definition exceptions and simply don't participate).
 */

#ifndef RISSP_COMPILER_PASSES_HH
#define RISSP_COMPILER_PASSES_HH

#include "compiler/ir.hh"

namespace rissp::minic
{

/** Pipeline configuration derived from the -O level. */
struct PassOptions
{
    bool optimize = true;     ///< master switch (off at -O0)
    int inlineThreshold = 0;  ///< max callee body size; 0 = no inlining
    bool cse = true;          ///< per-block common subexpressions
};

/** Inline calls to small leaf functions. Returns calls inlined. */
size_t inlinePass(IrUnit &unit, int threshold);

/** Fold constants, strength-reduce, simplify branches. */
size_t constFoldPass(IrFunction &fn);

/** Propagate copies of single-def values. */
size_t copyPropPass(IrFunction &fn);

/** Per-basic-block common subexpression elimination. */
size_t csePass(IrFunction &fn);

/** Remove pure instructions whose results are never used. */
size_t dcePass(IrFunction &fn);

/** Remove unreachable instructions and jumps to the next line. */
size_t cleanupPass(IrFunction &fn);

/** Run the full pipeline over a unit. */
void optimize(IrUnit &unit, const PassOptions &options);

} // namespace rissp::minic

#endif // RISSP_COMPILER_PASSES_HH
