/**
 * @file
 * Hand-written lexer for MiniC.
 */

#ifndef RISSP_COMPILER_LEXER_HH
#define RISSP_COMPILER_LEXER_HH

#include <stdexcept>
#include <vector>

#include "compiler/token.hh"

namespace rissp::minic
{

/** Compile-time diagnostic with a source line. */
class CompileError : public std::runtime_error
{
  public:
    CompileError(int line, const std::string &msg);

    int line() const { return errLine; }

  private:
    int errLine;
};

/** Tokenize MiniC source; throws CompileError on bad input. */
std::vector<Token> lex(const std::string &source);

} // namespace rissp::minic

#endif // RISSP_COMPILER_LEXER_HH
