/**
 * @file
 * MiniC linear IR: three-address code on virtual registers.
 *
 * Non-SSA, but lowering produces mostly single-definition temporaries,
 * which is what the conservative optimization passes key on. Control
 * flow is labels + conditional branches with fall-through false edges,
 * which maps 1:1 onto RISC-V's fused compare-and-branch instructions.
 */

#ifndef RISSP_COMPILER_IR_HH
#define RISSP_COMPILER_IR_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "compiler/ast.hh"

namespace rissp::minic
{

/** Branch/set condition codes (the six RISC-V branch conditions). */
enum class Cond : uint8_t { Eq, Ne, LtS, GeS, LtU, GeU };

/** IR opcodes. *I forms carry a 12-bit immediate in `imm`. */
enum class IrOp : uint8_t
{
    Const,      ///< dst = imm (any 32-bit value)
    Copy,       ///< dst = a
    Add, Sub, Mul, DivS, DivU, RemS, RemU,
    And, Or, Xor, Shl, ShrL, ShrA,
    AddI, AndI, OrI, XorI, ShlI, ShrLI, ShrAI,
    SetCc,      ///< dst = cc(a, b)
    SetCcI,     ///< dst = cc(a, imm)   (slti/sltiu forms only)
    AddrLocal,  ///< dst = &stack_slot[imm = slot id]
    AddrGlobal, ///< dst = &sym
    Load,       ///< dst = width-byte load [a + imm], signExt
    Store,      ///< width-byte store [b + imm] = a
    Call,       ///< dst? = sym(args...)
    Ret,        ///< return a (a = -1 for void)
    Jump,       ///< goto sym
    Branch,     ///< if cc(a, b) goto sym; else fall through
    Label,      ///< sym:
};

/** One IR instruction. */
struct IrInstr
{
    IrOp op;
    int dst = -1;         ///< defined vreg (-1 when none)
    int a = -1;           ///< first operand vreg
    int b = -1;           ///< second operand vreg
    int64_t imm = 0;      ///< Const value / immediate / offset / slot
    uint8_t width = 4;    ///< Load/Store access width
    bool signExt = false; ///< Load sign extension
    Cond cc = Cond::Eq;   ///< Branch/SetCc condition
    std::string sym;      ///< label / global / callee name
    std::vector<int> args;///< Call argument vregs
};

/** A stack-allocated object (local array, address-taken or spilled). */
struct StackSlot
{
    int id = 0;
    unsigned size = 4;
};

/** One lowered function. */
struct IrFunction
{
    std::string name;
    bool isVoid = false;
    std::vector<int> paramVregs;   ///< -1 entries: param lives in slot
    std::vector<int> paramSlots;   ///< slot id when vreg entry is -1
    int nextVreg = 0;
    std::vector<IrInstr> code;
    std::vector<StackSlot> slots;

    int
    newVreg()
    {
        return nextVreg++;
    }

    int
    newSlot(unsigned size)
    {
        StackSlot s;
        s.id = static_cast<int>(slots.size());
        s.size = (size + 3u) & ~3u;
        slots.push_back(s);
        return s.id;
    }

    bool hasCalls() const;

    /** Number of executable (non-label) instructions. */
    size_t bodySize() const;
};

/** The lowered unit: functions + pass-through data from the AST. */
struct IrUnit
{
    std::vector<IrFunction> funcs;
    const TranslationUnit *ast = nullptr;

    IrFunction *findFunc(const std::string &name);
};

/** True when the op defines `dst` and has no side effects. */
bool isPure(IrOp op);

/** Printable dump for debugging and golden tests. */
std::string dumpIr(const IrFunction &fn);

} // namespace rissp::minic

#endif // RISSP_COMPILER_IR_HH
