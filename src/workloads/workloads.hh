/**
 * @file
 * The evaluation workloads: MiniC versions of the 22 Embench
 * benchmarks plus the paper's three extreme-edge applications
 * (armpit, xgboost, af_detect). See DESIGN.md for the substitution
 * notes — notably, float Embench kernels are fixed-point here, which
 * matches the integer-only RV32E baremetal target the paper compiles
 * for.
 *
 * Every workload is self-checking: main() computes a checksum over
 * its results and returns it (exit code = a0 at the halting ecall),
 * optionally streaming intermediate values to the MMIO word port so
 * co-simulation has memory traffic to compare.
 */

#ifndef RISSP_WORKLOADS_WORKLOADS_HH
#define RISSP_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

namespace rissp
{

/** One benchmark program. */
struct Workload
{
    std::string name;       ///< paper's Table 3 name
    std::string category;   ///< "embench" or "extreme-edge"
    std::string source;     ///< MiniC source text
};

/** All 25 workloads in the paper's Table 3 order. */
const std::vector<Workload> &allWorkloads();

/** Lookup by name; nullptr when unknown. This is the entry point
 *  for user-provided names (CLI `@name`, plan files, Flow API). */
const Workload *findWorkload(const std::string &name);

/** Lookup by name; the name must exist (panic() otherwise). For
 *  trusted callers with hard-coded names; validate user input with
 *  findWorkload() first. */
const Workload &workloadByName(const std::string &name);

/** The three extreme-edge application names. */
std::vector<std::string> extremeEdgeNames();

} // namespace rissp

#endif // RISSP_WORKLOADS_WORKLOADS_HH
