/**
 * @file
 * Internal registry of workload source generators (one function per
 * benchmark). Public access goes through workloads.hh.
 */

#ifndef RISSP_WORKLOADS_EMBENCH_SOURCES_HH
#define RISSP_WORKLOADS_EMBENCH_SOURCES_HH

#include <string>

namespace rissp::workloads
{

// part 1
std::string srcAhaMont64();
std::string srcCrc32();
std::string srcCubic();
std::string srcEdn();
std::string srcHuffbench();
std::string srcMatmultInt();
std::string srcMd5sum();
std::string srcMinver();

// part 2
std::string srcNbody();
std::string srcNettleAes();
std::string srcNettleSha256();
std::string srcNsichneu();
std::string srcPicojpeg();
std::string srcPrimecount();
std::string srcQrduino();
std::string srcSglibCombined();

// part 3
std::string srcSlre();
std::string srcSt();
std::string srcStatemate();
std::string srcTarfind();
std::string srcUd();
std::string srcWikisort();

// extreme edge
std::string srcArmpit();
std::string srcXgboost();
std::string srcAfDetect();

} // namespace rissp::workloads

#endif // RISSP_WORKLOADS_EMBENCH_SOURCES_HH
