/**
 * @file
 * The three extreme-edge applications of §4 (armpit, xgboost,
 * af_detect), reconstructed from the paper's descriptions:
 *
 *  - armpit: two decision trees (one per gender) scoring armpit
 *    malodour from an 8-channel organic gas-sensor readout [29];
 *  - xgboost: a gradient-boosted decision-tree ensemble extracted
 *    from the Pima Indians diabetes dataset schema (8 attributes,
 *    binary outcome) [9, 39];
 *  - af_detect: the APPT atrial-fibrillation pipeline [32]: R-peak
 *    detection, RR/deltaRR interval computation, and a Bloom-filter
 *    binary predictor over an (RR, deltaRR) map.
 */

#include "workloads/embench_sources.hh"

namespace rissp::workloads
{

std::string
srcArmpit()
{
    return R"MC(
/* 8-channel sensor frames; values are ADC counts. */
int frames[12][8];

/* Decision tree for profile A (thresholds on channels). */
int tree_a(int *s)
{
    if (s[0] < 512) {
        if (s[3] < 300) {
            if (s[1] < 700) return 0;
            return 1;
        }
        if (s[5] < 420) return 1;
        return 2;
    }
    if (s[2] < 650) {
        if (s[6] < 510) return 1;
        return 2;
    }
    if (s[4] < 800) return 2;
    return 3;
}

/* Decision tree for profile B. */
int tree_b(int *s)
{
    if (s[1] < 480) {
        if (s[7] < 350) return 0;
        if (s[0] < 600) return 1;
        return 2;
    }
    if (s[4] < 560) {
        if (s[2] < 410) return 1;
        return 2;
    }
    if (s[6] < 720) return 2;
    return 3;
}

int main(void)
{
    /* synthetic sensor readout: slow drift + channel offsets */
    unsigned seed = 77u;
    for (int f = 0; f < 12; f++) {
        for (int c = 0; c < 8; c++) {
            seed = seed * 1103515245u + 12345u;
            frames[f][c] = ((int)(seed >> 22) & 1023)
                + f * 9 + c * 37;
        }
    }
    int hist[4] = {0, 0, 0, 0};
    for (int f = 0; f < 12; f++) {
        int a = tree_a(frames[f]);
        int b = tree_b(frames[f]);
        int score = a >= b ? a : b;  /* worst-case malodour class */
        hist[score]++;
        *(int *)0xFFFF0000 = score;
    }
    int check = hist[0] + hist[1] * 10 + hist[2] * 100
        + hist[3] * 1000;
    return check & 0xFF;
}
)MC";
}

std::string
srcXgboost()
{
    // A boosted ensemble of 4 shallow trees over the Pima schema:
    // {pregnancies, glucose, bp, skin, insulin, bmi*10, pedigree*1000,
    // age}. Leaf values are logit contributions in Q8.
    return R"MC(
int rows[16][8];

int tree0(int *r)
{
    if (r[1] < 130) {
        if (r[5] < 268) return -90;
        return -20;
    }
    if (r[7] < 29) return 10;
    return 120;
}

int tree1(int *r)
{
    if (r[5] < 240) return -70;
    if (r[1] < 100) return -40;
    if (r[6] < 500) return 30;
    return 90;
}

int tree2(int *r)
{
    if (r[7] < 25) {
        if (r[1] < 145) return -60;
        return 40;
    }
    if (r[4] < 100) return 20;
    return 70;
}

int tree3(int *r)
{
    if (r[0] < 5) {
        if (r[2] < 80) return -30;
        return 0;
    }
    if (r[5] < 320) return 25;
    return 80;
}

int predict(int *r)
{
    int logit = tree0(r) + tree1(r) + tree2(r) + tree3(r);
    return logit >= 0 ? 1 : 0;
}

int main(void)
{
    unsigned seed = 2024u;
    for (int i = 0; i < 16; i++) {
        seed = seed * 1103515245u + 12345u;
        rows[i][0] = (int)((seed >> 24) & 15);        /* preg */
        rows[i][1] = 70 + (int)((seed >> 16) & 127);  /* glucose */
        rows[i][2] = 50 + (int)((seed >> 10) & 63);   /* bp */
        rows[i][3] = (int)((seed >> 6) & 63);         /* skin */
        seed = seed * 1103515245u + 12345u;
        rows[i][4] = (int)((seed >> 20) & 255);       /* insulin */
        rows[i][5] = 180 + (int)((seed >> 12) & 255); /* bmi*10 */
        rows[i][6] = (int)((seed >> 4) & 1023);       /* pedigree */
        rows[i][7] = 21 + (int)(seed & 63);           /* age */
    }
    int positives = 0;
    for (int i = 0; i < 16; i++) {
        int p = predict(rows[i]);
        positives += p;
        *(int *)0xFFFF0000 = p;
    }
    return positives;
}
)MC";
}

std::string
srcAfDetect()
{
    return R"MC(
/* APPT: Approximate Pair Presence Tracking for AF detection. */
int ecg[640];          /* synthetic single-lead ECG, Q0 counts */
int rr_at[64];         /* sample indices of detected R peaks */
unsigned char bloom[64]; /* 512-bit Bloom filter */

void synth_ecg(void)
{
    /* baseline wander + R spikes with varying intervals (an AF-like
     * irregular rhythm in the second half) */
    unsigned seed = 11u;
    int next_peak = 20;
    int rhythm = 70;
    for (int i = 0; i < 640; i++) {
        seed = seed * 1103515245u + 12345u;
        int noise = (int)((seed >> 26) & 15) - 8;
        ecg[i] = 128 + noise + ((i & 31) - 16) / 4;
        if (i == next_peak) {
            ecg[i] += 160;
            if (i > 320) {
                /* irregular RR in the AF region */
                rhythm = 40 + (int)((seed >> 16) & 63);
            }
            next_peak += rhythm;
        }
    }
}

int detect_peaks(void)
{
    int count = 0;
    int threshold = 220;
    int refractory = 0;
    for (int i = 1; i < 639; i++) {
        if (refractory > 0) {
            refractory--;
            continue;
        }
        if (ecg[i] > threshold && ecg[i] >= ecg[i - 1]
            && ecg[i] >= ecg[i + 1]) {
            if (count < 64) rr_at[count++] = i;
            refractory = 20;
        }
    }
    return count;
}

void bloom_insert(unsigned key)
{
    unsigned h1 = key * 2654435761u;
    unsigned h2 = key * 40503u + 17u;
    unsigned b1 = (h1 >> 23) & 511u;
    unsigned b2 = (h2 >> 7) & 511u;
    bloom[b1 >> 3] |= (unsigned char)(1 << (b1 & 7));
    bloom[b2 >> 3] |= (unsigned char)(1 << (b2 & 7));
}

int bloom_query(unsigned key)
{
    unsigned h1 = key * 2654435761u;
    unsigned h2 = key * 40503u + 17u;
    unsigned b1 = (h1 >> 23) & 511u;
    unsigned b2 = (h2 >> 7) & 511u;
    if (!(bloom[b1 >> 3] & (1 << (b1 & 7)))) return 0;
    if (!(bloom[b2 >> 3] & (1 << (b2 & 7)))) return 0;
    return 1;
}

int main(void)
{
    synth_ecg();
    int peaks = detect_peaks();

    /* train the filter on the regular (non-AF) first half pairs */
    for (int i = 2; i < peaks; i++) {
        if (rr_at[i] >= 320) break;
        int rr = rr_at[i] - rr_at[i - 1];
        int prev_rr = rr_at[i - 1] - rr_at[i - 2];
        int drr = rr - prev_rr;
        unsigned key = (unsigned)((rr / 8) << 8)
            ^ (unsigned)((drr + 128) / 8);
        bloom_insert(key);
    }

    /* classify each subsequent beat pair: unseen (RR, dRR) -> AF */
    int af_votes = 0;
    int total = 0;
    for (int i = 2; i < peaks; i++) {
        if (rr_at[i] < 320) continue;
        int rr = rr_at[i] - rr_at[i - 1];
        int prev_rr = rr_at[i - 1] - rr_at[i - 2];
        int drr = rr - prev_rr;
        unsigned key = (unsigned)((rr / 8) << 8)
            ^ (unsigned)((drr + 128) / 8);
        if (!bloom_query(key)) af_votes++;
        total++;
    }
    int af_detected = (total > 0 && af_votes * 2 > total) ? 1 : 0;
    *(int *)0xFFFF0000 = peaks;
    *(int *)0xFFFF0000 = af_votes;
    *(int *)0xFFFF0000 = af_detected;
    return af_detected * 100 + peaks;
}
)MC";
}

} // namespace rissp::workloads
