/**
 * @file
 * Embench-analog workloads, part 3 (slre .. wikisort).
 */

#include "workloads/embench_sources.hh"

namespace rissp::workloads
{

std::string
srcSlre()
{
    // A tiny regex matcher supporting literals, '.', '*' and '$' —
    // the recursive skeleton of SLRE.
    return R"MC(
int match_here(char *re, char *text);

int match_star(int c, char *re, char *text)
{
    do {
        if (match_here(re, text)) return 1;
    } while (*text != 0 && (*text++ == c || c == '.'));
    return 0;
}

int match_here(char *re, char *text)
{
    if (re[0] == 0) return 1;
    if (re[1] == '*') return match_star(re[0], re + 2, text);
    if (re[0] == '$' && re[1] == 0) return *text == 0;
    if (*text != 0 && (re[0] == '.' || re[0] == *text))
        return match_here(re + 1, text + 1);
    return 0;
}

int match(char *re, char *text)
{
    if (re[0] == '^') return match_here(re + 1, text);
    do {
        if (match_here(re, text)) return 1;
    } while (*text++ != 0);
    return 0;
}

char re1[6]  = "ab*c";
char re2[8]  = "^hel.o$";
char re3[4]  = "x*y";
char t1[10] = "xabbbbcz";
char t2[6]  = "hello";
char t3[4]  = "zzy";
char t4[6]  = "world";

int main(void)
{
    int check = 0;
    if (match(re1, t1)) check += 1;
    if (match(re2, t2)) check += 2;
    if (match(re3, t3)) check += 4;
    if (match(re1, t4)) check += 8;   /* no match expected */
    if (match(re2, t4)) check += 16;  /* no match expected */
    if (match(re3, t4)) check += 32;  /* x*y: zero x's needs y */
    *(int *)0xFFFF0000 = check;
    return check;
}
)MC";
}

std::string
srcSt()
{
    // Statistics kernel (mean, variance, correlation) in Q8 fixed
    // point; the original uses doubles.
    return R"MC(
int xs[64];
int ys[64];

int isqrt2(int x)
{
    int r = 0;
    int bit = 1 << 30;
    while (bit > x) bit >>= 2;
    while (bit) {
        if (x >= r + bit) {
            x -= r + bit;
            r = (r >> 1) + bit;
        } else {
            r >>= 1;
        }
        bit >>= 2;
    }
    return r;
}

int mean(int *v)
{
    int s = 0;
    for (int i = 0; i < 64; i++) s += v[i];
    return s / 64;
}

int variance(int *v, int m)
{
    int s = 0;
    for (int i = 0; i < 64; i++) {
        int d = v[i] - m;
        s += (d * d) >> 6;
    }
    return s / 64;
}

int correlation(void)
{
    int mx = mean(xs);
    int my = mean(ys);
    int sxy = 0;
    for (int i = 0; i < 64; i++)
        sxy += ((xs[i] - mx) * (ys[i] - my)) >> 6;
    int vx = variance(xs, mx);
    int vy = variance(ys, my);
    int den = isqrt2(vx) * isqrt2(vy);
    if (den == 0) return 0;
    return (sxy / 64 << 8) / den;
}

int main(void)
{
    unsigned seed = 5u;
    for (int i = 0; i < 64; i++) {
        seed = seed * 1103515245u + 12345u;
        xs[i] = (int)((seed >> 20) & 255) << 2;
        ys[i] = xs[i] + ((int)((seed >> 12) & 63) - 32);
    }
    int mx = mean(xs);
    int vx = variance(xs, mx);
    int r = correlation();
    int check = mx + vx * 3 + r * 5;
    *(int *)0xFFFF0000 = check;
    return check & 0xFF;
}
)MC";
}

std::string
srcStatemate()
{
    // Generated state-machine code: a car-window controller with
    // many mode flags and guarded transitions, all branches.
    return R"MC(
int window_pos;
int motor_cmd;
int mode;       /* 0 idle, 1 up, 2 down, 3 blocked, 4 auto-up */
int key_state;
int block_sensor;
int button_up;
int button_down;

void controller_step(void)
{
    if (key_state == 0) {
        motor_cmd = 0;
        mode = 0;
        return;
    }
    if (block_sensor && (mode == 1 || mode == 4)) {
        mode = 3;
        motor_cmd = -1;
        return;
    }
    if (mode == 3) {
        if (window_pos > 0) {
            motor_cmd = -1;
        } else {
            motor_cmd = 0;
            mode = 0;
        }
        return;
    }
    if (button_up && !button_down) {
        if (mode == 0) mode = 1;
        else if (mode == 1) mode = 4;
        motor_cmd = 1;
    } else if (button_down && !button_up) {
        mode = 2;
        motor_cmd = -1;
    } else {
        if (mode == 4) {
            motor_cmd = 1;
            if (window_pos >= 100) { mode = 0; motor_cmd = 0; }
        } else {
            mode = 0;
            motor_cmd = 0;
        }
    }
}

int main(void)
{
    window_pos = 30;
    mode = 0;
    key_state = 1;
    int check = 0;
    for (int t = 0; t < 160; t++) {
        button_up = (t & 7) < 3;
        button_down = (t & 15) == 9;
        block_sensor = (t % 37) == 20;
        key_state = t < 150;
        controller_step();
        window_pos += motor_cmd;
        if (window_pos < 0) window_pos = 0;
        if (window_pos > 100) window_pos = 100;
        check += window_pos + mode * 3 + motor_cmd;
    }
    *(int *)0xFFFF0000 = check;
    return check & 0xFF;
}
)MC";
}

std::string
srcTarfind()
{
    // Scan a synthetic tar archive for header blocks and checksum
    // the file names, as tarfind walks 512-byte headers.
    return R"MC(
unsigned char archive[2048];

int is_header(int off)
{
    /* ustar magic at offset 257 */
    return archive[off + 257] == 'u'
        && archive[off + 258] == 's'
        && archive[off + 259] == 't'
        && archive[off + 260] == 'a'
        && archive[off + 261] == 'r';
}

int octal_size(int off)
{
    int v = 0;
    for (int i = 0; i < 11; i++) {
        unsigned char c = archive[off + 124 + i];
        if (c < '0' || c > '7') break;
        v = v * 8 + (c - '0');
    }
    return v;
}

void put_header(int off, int id, int size)
{
    archive[off] = (unsigned char)('a' + id);
    archive[off + 1] = '.';
    archive[off + 2] = 't';
    archive[off + 3] = 0;
    archive[off + 257] = 'u';
    archive[off + 258] = 's';
    archive[off + 259] = 't';
    archive[off + 260] = 'a';
    archive[off + 261] = 'r';
    for (int i = 0; i < 11; i++)
        archive[off + 124 + i] = '0';
    int pos = 134;
    while (size > 0 && pos >= 124) {
        archive[off + pos] = (unsigned char)('0' + (size & 7));
        size >>= 3;
        pos--;
    }
}

int main(void)
{
    for (int i = 0; i < 2048; i++)
        archive[i] = 0;
    put_header(0, 0, 300);
    put_header(512 + 512, 1, 40);  /* one data block after hdr 0 */
    put_header(1536, 2, 0);
    int files = 0;
    int bytes = 0;
    int names = 0;
    int off = 0;
    while (off + 512 <= 2048) {
        if (is_header(off)) {
            int size = octal_size(off);
            files++;
            bytes += size;
            for (int i = 0; archive[off + i] != 0 && i < 100; i++)
                names += archive[off + i];
            int blocks = (size + 511) / 512;
            off += 512 + blocks * 512;
        } else {
            off += 512;
        }
    }
    int check = files * 100000 + bytes * 10 + names;
    *(int *)0xFFFF0000 = check;
    return check & 0xFF;
}
)MC";
}

std::string
srcUd()
{
    // LU decomposition and back-substitution on integers (the
    // original "ud" solves a small linear system the same way).
    return R"MC(
int a_mat[8][8];
int b_vec[8];
int x_vec[8];

int lu_solve(void)
{
    /* Doolittle elimination, integer arithmetic scaled by 64 */
    for (int k = 0; k < 7; k++) {
        if (a_mat[k][k] == 0) return -1;
        for (int i = k + 1; i < 8; i++) {
            int f = (a_mat[i][k] << 6) / a_mat[k][k];
            for (int j = k; j < 8; j++)
                a_mat[i][j] -= (f * a_mat[k][j]) >> 6;
            b_vec[i] -= (f * b_vec[k]) >> 6;
        }
    }
    for (int i = 7; i >= 0; i--) {
        int s = b_vec[i] << 6;
        for (int j = i + 1; j < 8; j++)
            s -= a_mat[i][j] * x_vec[j];
        if (a_mat[i][i] == 0) return -1;
        x_vec[i] = s / a_mat[i][i];
    }
    return 0;
}

int main(void)
{
    for (int i = 0; i < 8; i++) {
        for (int j = 0; j < 8; j++)
            a_mat[i][j] = (i == j) ? 40 + i : (i + j) & 3;
        b_vec[i] = (i + 1) * 12;
    }
    int rc = lu_solve();
    int check = rc == 0 ? 0 : 1000000;
    for (int i = 0; i < 8; i++)
        check += x_vec[i] * (i + 1);
    *(int *)0xFFFF0000 = check;
    return check & 0xFF;
}
)MC";
}

std::string
srcWikisort()
{
    // Stable bottom-up merge sort with a fixed scratch buffer, the
    // heart of wikisort's merge machinery.
    return R"MC(
int v[96];
int scratch[96];

void merge_runs(int lo, int mid, int hi)
{
    int i = lo;
    int j = mid;
    int k = lo;
    while (i < mid && j < hi)
        scratch[k++] = v[j] < v[i] ? v[j++] : v[i++];
    while (i < mid) scratch[k++] = v[i++];
    while (j < hi) scratch[k++] = v[j++];
    for (int t = lo; t < hi; t++)
        v[t] = scratch[t];
}

void mergesort_all(int n)
{
    for (int width = 1; width < n; width <<= 1) {
        for (int lo = 0; lo + width < n; lo += width << 1) {
            int mid = lo + width;
            int hi = lo + (width << 1);
            if (hi > n) hi = n;
            merge_runs(lo, mid, hi);
        }
    }
}

int main(void)
{
    unsigned seed = 31u;
    for (int i = 0; i < 96; i++) {
        seed = seed * 1103515245u + 12345u;
        v[i] = (int)((seed >> 16) & 4095) - 2048;
    }
    mergesort_all(96);
    int check = 0;
    for (int i = 1; i < 96; i++)
        if (v[i - 1] > v[i]) check += 100000;
    for (int i = 0; i < 96; i += 7)
        check += v[i] * (i + 1);
    *(int *)0xFFFF0000 = check;
    return check & 0xFF;
}
)MC";
}

} // namespace rissp::workloads
