/**
 * @file
 * Embench-analog workloads, part 2 (nbody .. sglib-combined).
 */

#include "workloads/embench_sources.hh"

namespace rissp::workloads
{

std::string
srcNbody()
{
    // Fixed-point (Q8) planar n-body step with softened gravity; the
    // original integrates the outer solar system in doubles.
    return R"MC(
int px[5]; int py[5];
int vx[5]; int vy[5];
int mass[5];

int isqrt(int x)
{
    int r = 0;
    int bit = 1 << 30;
    while (bit > x) bit >>= 2;
    while (bit) {
        if (x >= r + bit) {
            x -= r + bit;
            r = (r >> 1) + bit;
        } else {
            r >>= 1;
        }
        bit >>= 2;
    }
    return r;
}

void step(void)
{
    for (int i = 0; i < 5; i++) {
        int ax = 0;
        int ay = 0;
        for (int j = 0; j < 5; j++) {
            if (j == i) continue;
            int dx = px[j] - px[i];
            int dy = py[j] - py[i];
            int d2 = ((dx * dx) >> 8) + ((dy * dy) >> 8) + 16;
            int d = isqrt(d2 << 8);
            if (d == 0) d = 1;
            int f = (mass[j] << 8) / (d2);
            ax += (f * dx) / d;
            ay += (f * dy) / d;
        }
        vx[i] += ax >> 4;
        vy[i] += ay >> 4;
    }
    for (int i = 0; i < 5; i++) {
        px[i] += vx[i] >> 4;
        py[i] += vy[i] >> 4;
    }
}

int main(void)
{
    for (int i = 0; i < 5; i++) {
        px[i] = (i * 37 - 80) << 8;
        py[i] = (i * 23 - 40) << 8;
        vx[i] = 0;
        vy[i] = 0;
        mass[i] = 64 + i * 32;
    }
    for (int t = 0; t < 24; t++)
        step();
    int check = 0;
    for (int i = 0; i < 5; i++)
        check += px[i] + py[i] * 3 + vx[i] * 5 + vy[i] * 7;
    *(int *)0xFFFF0000 = check;
    return check & 0xFF;
}
)MC";
}

std::string
srcNettleAes()
{
    // AES-128 SubBytes/ShiftRows/MixColumns/AddRoundKey over a block,
    // with the GF(2^8) xtime multiply, as in nettle's aes code.
    return R"MC(
unsigned char sbox_seed[16] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5,
    0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76
};
unsigned char sbox[256];
unsigned char state[16];
unsigned char rkey[16];

unsigned char xtime(unsigned char x)
{
    int v = x << 1;
    if (x & 0x80) v ^= 0x1b;
    return (unsigned char)v;
}

void build_sbox(void)
{
    /* synthetic bijective byte table seeded from the real sbox row */
    for (int i = 0; i < 256; i++) {
        unsigned char v = sbox_seed[i & 15];
        v = (unsigned char)(v ^ (i >> 4) ^ (i * 31));
        sbox[i] = v;
    }
}

void sub_bytes(void)
{
    for (int i = 0; i < 16; i++)
        state[i] = sbox[state[i]];
}

void shift_rows(void)
{
    for (int r = 1; r < 4; r++) {
        for (int k = 0; k < r; k++) {
            unsigned char t = state[r];
            state[r] = state[r + 4];
            state[r + 4] = state[r + 8];
            state[r + 8] = state[r + 12];
            state[r + 12] = t;
        }
    }
}

void mix_columns(void)
{
    for (int c = 0; c < 4; c++) {
        unsigned char a0 = state[c * 4];
        unsigned char a1 = state[c * 4 + 1];
        unsigned char a2 = state[c * 4 + 2];
        unsigned char a3 = state[c * 4 + 3];
        unsigned char all = (unsigned char)(a0 ^ a1 ^ a2 ^ a3);
        state[c * 4]     ^= all ^ xtime((unsigned char)(a0 ^ a1));
        state[c * 4 + 1] ^= all ^ xtime((unsigned char)(a1 ^ a2));
        state[c * 4 + 2] ^= all ^ xtime((unsigned char)(a2 ^ a3));
        state[c * 4 + 3] ^= all ^ xtime((unsigned char)(a3 ^ a0));
    }
}

void add_round_key(int round)
{
    for (int i = 0; i < 16; i++)
        rkey[i] = (unsigned char)(rkey[i] + round * 17 + i);
    for (int i = 0; i < 16; i++)
        state[i] ^= rkey[i];
}

int main(void)
{
    build_sbox();
    for (int i = 0; i < 16; i++) {
        state[i] = (unsigned char)(i * 11 + 5);
        rkey[i] = (unsigned char)(0x2b ^ (i * 7));
    }
    add_round_key(0);
    for (int round = 1; round <= 10; round++) {
        sub_bytes();
        shift_rows();
        if (round < 10) mix_columns();
        add_round_key(round);
    }
    int check = 0;
    for (int i = 0; i < 16; i++)
        check = (check << 1) ^ state[i];
    *(int *)0xFFFF0000 = check;
    return check & 0xFF;
}
)MC";
}

std::string
srcNettleSha256()
{
    // The real SHA-256 compression function over one block.
    return R"MC(
unsigned Ksha[64] = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u,
    0x3956c25bu, 0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u,
    0xd807aa98u, 0x12835b01u, 0x243185beu, 0x550c7dc3u,
    0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u, 0xc19bf174u,
    0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
    0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau,
    0x983e5152u, 0xa831c66du, 0xb00327c8u, 0xbf597fc7u,
    0xc6e00bf3u, 0xd5a79147u, 0x06ca6351u, 0x14292967u,
    0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu, 0x53380d13u,
    0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
    0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u,
    0xd192e819u, 0xd6990624u, 0xf40e3585u, 0x106aa070u,
    0x19a4c116u, 0x1e376c08u, 0x2748774cu, 0x34b0bcb5u,
    0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu, 0x682e6ff3u,
    0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u
};
unsigned Hsha[8] = {
    0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
    0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u
};
unsigned W[64];

unsigned rotr(unsigned x, int s)
{
    return (x >> s) | (x << (32 - s));
}

void sha_block(void)
{
    for (int i = 16; i < 64; i++) {
        unsigned s0 = rotr(W[i-15], 7) ^ rotr(W[i-15], 18)
            ^ (W[i-15] >> 3);
        unsigned s1 = rotr(W[i-2], 17) ^ rotr(W[i-2], 19)
            ^ (W[i-2] >> 10);
        W[i] = W[i-16] + s0 + W[i-7] + s1;
    }
    unsigned a = Hsha[0]; unsigned b = Hsha[1];
    unsigned c = Hsha[2]; unsigned d = Hsha[3];
    unsigned e = Hsha[4]; unsigned f = Hsha[5];
    unsigned g = Hsha[6]; unsigned h = Hsha[7];
    for (int i = 0; i < 64; i++) {
        unsigned S1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        unsigned ch = (e & f) ^ (~e & g);
        unsigned t1 = h + S1 + ch + Ksha[i] + W[i];
        unsigned S0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        unsigned mj = (a & b) ^ (a & c) ^ (b & c);
        unsigned t2 = S0 + mj;
        h = g; g = f; f = e;
        e = d + t1;
        d = c; c = b; b = a;
        a = t1 + t2;
    }
    Hsha[0] += a; Hsha[1] += b; Hsha[2] += c; Hsha[3] += d;
    Hsha[4] += e; Hsha[5] += f; Hsha[6] += g; Hsha[7] += h;
}

int main(void)
{
    for (int i = 0; i < 16; i++)
        W[i] = (unsigned)i * 0x11223344u + 0x55u;
    sha_block();
    unsigned check = 0;
    for (int i = 0; i < 8; i++)
        check ^= Hsha[i];
    *(int *)0xFFFF0000 = (int)check;
    return (int)(check & 0xFF);
}
)MC";
}

std::string
srcNsichneu()
{
    // Petri-net simulation: very many independent guarded updates,
    // straight-line branchy code with almost no arithmetic variety.
    return R"MC(
int P[32];

void fire(void)
{
    if (P[0] > 0 && P[1] > 0) { P[0]--; P[1]--; P[2]++; P[3]++; }
    if (P[2] > 1) { P[2] -= 2; P[4]++; }
    if (P[3] > 0 && P[4] > 0) { P[3]--; P[4]--; P[5]++; }
    if (P[5] > 2) { P[5] -= 3; P[6] += 2; }
    if (P[6] > 0) { P[6]--; P[7]++; P[8]++; }
    if (P[7] > 0 && P[8] > 0) { P[7]--; P[8]--; P[9]++; }
    if (P[9] > 1) { P[9] -= 2; P[10]++; P[0]++; }
    if (P[10] > 0 && P[2] > 0) { P[10]--; P[2]--; P[11]++; }
    if (P[11] > 0) { P[11]--; P[12]++; P[1]++; }
    if (P[12] > 2) { P[12] -= 2; P[13]++; }
    if (P[13] > 0 && P[5] > 0) { P[13]--; P[5]--; P[14]++; }
    if (P[14] > 0) { P[14]--; P[15]++; P[4]++; }
    if (P[15] > 1) { P[15] -= 2; P[16]++; }
    if (P[16] > 0 && P[9] > 0) { P[16]--; P[9]--; P[17]++; }
    if (P[17] > 0) { P[17]--; P[18]++; P[8]++; }
    if (P[18] > 0 && P[12] > 0) { P[18]--; P[12]--; P[19]++; }
    if (P[19] > 1) { P[19] -= 2; P[20]++; P[0]++; }
    if (P[20] > 0) { P[20]--; P[21]++; P[3]++; }
    if (P[21] > 0 && P[15] > 0) { P[21]--; P[15]--; P[22]++; }
    if (P[22] > 0) { P[22]--; P[23]++; P[7]++; }
    if (P[23] > 2) { P[23] -= 3; P[24]++; }
    if (P[24] > 0 && P[18] > 0) { P[24]--; P[18]--; P[25]++; }
    if (P[25] > 0) { P[25]--; P[26]++; P[11]++; }
    if (P[26] > 1) { P[26] -= 2; P[27]++; }
    if (P[27] > 0 && P[21] > 0) { P[27]--; P[21]--; P[28]++; }
    if (P[28] > 0) { P[28]--; P[29]++; P[14]++; }
    if (P[29] > 0 && P[24] > 0) { P[29]--; P[24]--; P[30]++; }
    if (P[30] > 1) { P[30] -= 2; P[31]++; P[1]++; }
    if (P[31] > 3) { P[31] -= 4; P[0] += 2; P[6]++; }
}

int main(void)
{
    for (int i = 0; i < 32; i++)
        P[i] = (i * 5 + 3) & 7;
    for (int t = 0; t < 200; t++)
        fire();
    int check = 0;
    for (int i = 0; i < 32; i++)
        check += P[i] * (i + 1);
    *(int *)0xFFFF0000 = check;
    return check & 0xFF;
}
)MC";
}

std::string
srcPicojpeg()
{
    // JPEG decode inner kernels: zig-zag reorder, dequantization and
    // the AAN-style integer 8x8 IDCT rows/columns.
    return R"MC(
int blockv[64];
int quant[64];
int zigzag_order[64] = {
     0,  1,  8, 16,  9,  2,  3, 10,
    17, 24, 32, 25, 18, 11,  4,  5,
    12, 19, 26, 33, 40, 48, 41, 34,
    27, 20, 13,  6,  7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36,
    29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46,
    53, 60, 61, 54, 47, 55, 62, 63
};
int coeffs[64];

void dequant_zigzag(void)
{
    for (int i = 0; i < 64; i++)
        blockv[zigzag_order[i]] = coeffs[i] * quant[i];
}

void idct_1d(int *v0, int *v1, int *v2, int *v3)
{
    int a = *v0 + *v2;
    int b = *v0 - *v2;
    int c = (*v1 * 181) >> 7;
    int d = (*v3 * 181) >> 7;
    *v0 = a + c;
    *v1 = b + d;
    *v2 = b - d;
    *v3 = a - c;
}

void idct(void)
{
    for (int r = 0; r < 8; r++) {
        idct_1d(&blockv[r * 8], &blockv[r * 8 + 2],
                &blockv[r * 8 + 4], &blockv[r * 8 + 6]);
        idct_1d(&blockv[r * 8 + 1], &blockv[r * 8 + 3],
                &blockv[r * 8 + 5], &blockv[r * 8 + 7]);
    }
    for (int c = 0; c < 8; c++) {
        idct_1d(&blockv[c], &blockv[16 + c], &blockv[32 + c],
                &blockv[48 + c]);
        idct_1d(&blockv[8 + c], &blockv[24 + c], &blockv[40 + c],
                &blockv[56 + c]);
    }
}

int clamp_pixel(int v)
{
    v = (v >> 5) + 128;
    if (v < 0) return 0;
    if (v > 255) return 255;
    return v;
}

int main(void)
{
    unsigned seed = 7u;
    for (int i = 0; i < 64; i++) {
        quant[i] = 1 + ((i * 3) >> 2);
        seed = seed * 1103515245u + 12345u;
        coeffs[i] = (int)((seed >> 20) & 63) - 32;
        /* sparse high-frequency coefficients, like real JPEG data */
        if (i > 20 && (i & 3) != 0) coeffs[i] = 0;
    }
    int check = 0;
    for (int mcu = 0; mcu < 6; mcu++) {
        coeffs[0] = 40 + mcu * 10;
        dequant_zigzag();
        idct();
        for (int i = 0; i < 64; i++)
            check += clamp_pixel(blockv[i]);
        check &= 0xFFFFFF;
    }
    *(int *)0xFFFF0000 = check;
    return check & 0xFF;
}
)MC";
}

std::string
srcPrimecount()
{
    return R"MC(
int main(void)
{
    /* count primes below 3000 by trial division with wheel-2 */
    int count = 1; /* 2 */
    for (int n = 3; n < 3000; n += 2) {
        int prime = 1;
        for (int d = 3; d * d <= n; d += 2) {
            if (n % d == 0) {
                prime = 0;
                break;
            }
        }
        count += prime;
    }
    *(int *)0xFFFF0000 = count;
    return count & 0xFF;
}
)MC";
}

std::string
srcQrduino()
{
    // QR code generation kernels: GF(256) arithmetic with log/antilog
    // tables and Reed-Solomon ECC byte generation.
    return R"MC(
unsigned char glog[256];
unsigned char gexp[256];
unsigned char data_bytes[26];
unsigned char ecc[10];
unsigned char gen_poly[11] = {
    1, 216, 194, 159, 111, 199, 94, 95, 113, 157, 193
};

void build_gf_tables(void)
{
    int x = 1;
    for (int i = 0; i < 255; i++) {
        gexp[i] = (unsigned char)x;
        glog[x] = (unsigned char)i;
        x <<= 1;
        if (x & 0x100) x ^= 0x11d;
    }
    gexp[255] = gexp[0];
}

unsigned char gf_mul(unsigned char a, unsigned char b)
{
    if (a == 0 || b == 0) return 0;
    int s = glog[a] + glog[b];
    if (s >= 255) s -= 255;
    return gexp[s];
}

void rs_encode(void)
{
    for (int i = 0; i < 10; i++) ecc[i] = 0;
    for (int i = 0; i < 26; i++) {
        unsigned char factor = data_bytes[i] ^ ecc[0];
        for (int j = 0; j < 9; j++)
            ecc[j] = ecc[j + 1]
                ^ gf_mul(factor, gen_poly[j + 1]);
        ecc[9] = gf_mul(factor, gen_poly[10]);
    }
}

int main(void)
{
    build_gf_tables();
    for (int i = 0; i < 26; i++)
        data_bytes[i] = (unsigned char)(i * 19 + 64);
    int check = 0;
    for (int round = 0; round < 4; round++) {
        data_bytes[0] = (unsigned char)(round + 1);
        rs_encode();
        for (int i = 0; i < 10; i++)
            check = (check << 1) ^ ecc[i];
        check &= 0xFFFFFF;
    }
    *(int *)0xFFFF0000 = check;
    return check & 0xFF;
}
)MC";
}

std::string
srcSglibCombined()
{
    // Container-library torture: array insertion sort, binary search,
    // and an index-linked list reversal, as the sglib test combines.
    return R"MC(
int arr[48];
int list_val[48];
int list_next[48];

void insertion_sort(int n)
{
    for (int i = 1; i < n; i++) {
        int key = arr[i];
        int j = i - 1;
        while (j >= 0 && arr[j] > key) {
            arr[j + 1] = arr[j];
            j--;
        }
        arr[j + 1] = key;
    }
}

int bsearch_arr(int n, int target)
{
    int lo = 0;
    int hi = n - 1;
    while (lo <= hi) {
        int mid = (lo + hi) / 2;
        if (arr[mid] == target) return mid;
        if (arr[mid] < target) lo = mid + 1;
        else hi = mid - 1;
    }
    return -1;
}

int reverse_list(int head)
{
    int prev = -1;
    while (head >= 0) {
        int nxt = list_next[head];
        list_next[head] = prev;
        prev = head;
        head = nxt;
    }
    return prev;
}

int main(void)
{
    unsigned seed = 99u;
    for (int i = 0; i < 48; i++) {
        seed = seed * 1103515245u + 12345u;
        arr[i] = (int)((seed >> 16) & 1023);
        list_val[i] = arr[i];
        list_next[i] = i + 1 < 48 ? i + 1 : -1;
    }
    insertion_sort(48);
    int check = 0;
    for (int i = 1; i < 48; i++)
        if (arr[i - 1] > arr[i]) check += 100000;
    check += bsearch_arr(48, arr[10]) * 3;
    check += bsearch_arr(48, -5) + 1;
    int head = reverse_list(0);
    int steps = 0;
    while (head >= 0) {
        check += list_val[head] * (steps & 3);
        head = list_next[head];
        steps++;
    }
    check += steps;
    *(int *)0xFFFF0000 = check;
    return check & 0xFF;
}
)MC";
}

} // namespace rissp::workloads
