#include "workloads/workloads.hh"

#include "util/logging.hh"
#include "workloads/embench_sources.hh"

namespace rissp
{

namespace
{

std::vector<Workload>
buildAll()
{
    using namespace workloads;
    std::vector<Workload> all;
    auto add = [&](const char *name, const char *cat,
                   std::string src) {
        all.push_back(Workload{name, cat, std::move(src)});
    };
    add("aha-mont64", "embench", srcAhaMont64());
    add("crc32", "embench", srcCrc32());
    add("cubic", "embench", srcCubic());
    add("edn", "embench", srcEdn());
    add("huffbench", "embench", srcHuffbench());
    add("matmult-int", "embench", srcMatmultInt());
    add("md5sum", "embench", srcMd5sum());
    add("minver", "embench", srcMinver());
    add("nbody", "embench", srcNbody());
    add("nettle-aes", "embench", srcNettleAes());
    add("nettle-sha256", "embench", srcNettleSha256());
    add("nsichneu", "embench", srcNsichneu());
    add("picojpeg", "embench", srcPicojpeg());
    add("primecount", "embench", srcPrimecount());
    add("qrduino", "embench", srcQrduino());
    add("sglib-combined", "embench", srcSglibCombined());
    add("slre", "embench", srcSlre());
    add("st", "embench", srcSt());
    add("statemate", "embench", srcStatemate());
    add("tarfind", "embench", srcTarfind());
    add("ud", "embench", srcUd());
    add("wikisort", "embench", srcWikisort());
    add("armpit", "extreme-edge", srcArmpit());
    add("xgboost", "extreme-edge", srcXgboost());
    add("af_detect", "extreme-edge", srcAfDetect());
    return all;
}

} // namespace

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> all = buildAll();
    return all;
}

const Workload *
findWorkload(const std::string &name)
{
    for (const Workload &w : allWorkloads())
        if (w.name == name)
            return &w;
    return nullptr;
}

const Workload &
workloadByName(const std::string &name)
{
    if (const Workload *w = findWorkload(name))
        return *w;
    panic("workloadByName: unknown workload '%s' (validate with "
          "findWorkload first)", name.c_str());
}

std::vector<std::string>
extremeEdgeNames()
{
    return {"armpit", "xgboost", "af_detect"};
}

} // namespace rissp
