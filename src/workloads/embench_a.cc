/**
 * @file
 * Embench-analog workloads, part 1 (aha-mont64 .. md5sum).
 *
 * Each function returns the MiniC source of one benchmark kernel.
 * The kernels follow the algorithmic skeleton of the original
 * Embench application (the property that matters here is the
 * instruction-subset profile each algorithm family induces), sized so
 * simulated runs finish in well under a second.
 */

#include "workloads/embench_sources.hh"

namespace rissp::workloads
{

std::string
srcAhaMont64()
{
    // Montgomery-flavoured modular arithmetic: shift-add modmul and
    // modexp, heavy on add/sub/shift/compare like the original's
    // 64-bit Montgomery multiplication.
    return R"MC(
unsigned mulmod(unsigned a, unsigned b, unsigned m)
{
    unsigned acc = 0;
    a %= m;
    while (b) {
        if (b & 1) {
            acc += a;
            if (acc >= m || acc < a) acc -= m;
        }
        unsigned a2 = a + a;
        if (a2 >= m || a2 < a) a2 -= m;
        a = a2;
        b >>= 1;
    }
    return acc;
}

unsigned modexp(unsigned base, unsigned e, unsigned m)
{
    unsigned r = 1;
    base %= m;
    while (e) {
        if (e & 1) r = mulmod(r, base, m);
        base = mulmod(base, base, m);
        e >>= 1;
    }
    return r;
}

int main(void)
{
    unsigned m = 2147483647u;       /* 2^31 - 1 */
    unsigned check = 0;
    for (unsigned i = 1; i <= 12; i++) {
        unsigned x = modexp(7u, i * 13u + 1u, m);
        check ^= x;
        check = (check << 1) | (check >> 31);
    }
    *(int *)0xFFFF0000 = (int)check;
    return (int)(check & 0xFF);
}
)MC";
}

std::string
srcCrc32()
{
    return R"MC(
unsigned char buf[256];

unsigned crc32(unsigned char *p, int n)
{
    unsigned crc = 0xFFFFFFFFu;
    for (int i = 0; i < n; i++) {
        crc ^= p[i];
        for (int k = 0; k < 8; k++) {
            if (crc & 1u)
                crc = (crc >> 1) ^ 0xEDB88320u;
            else
                crc >>= 1;
        }
    }
    return crc ^ 0xFFFFFFFFu;
}

int main(void)
{
    for (int i = 0; i < 256; i++)
        buf[i] = (unsigned char)(i * 7 + 3);
    unsigned c = crc32(buf, 256);
    *(int *)0xFFFF0000 = (int)c;
    return (int)(c & 0xFF);
}
)MC";
}

std::string
srcCubic()
{
    // Cubic root solving; the original uses doubles, this is Q16
    // fixed point with a bisection/Newton hybrid.
    return R"MC(
int icbrt(int x)
{
    /* integer cube root by bit-by-bit construction */
    int y = 0;
    for (int s = 30; s >= 0; s -= 3) {
        y += y;
        int b = 3 * y * (y + 1) + 1;
        if ((x >> s) >= b) {
            x -= b << s;
            y++;
        }
    }
    return y;
}

int eval_cubic(int a, int b, int c, int d, int x)
{
    return ((a * x + b) * x + c) * x + d;
}

int main(void)
{
    int check = 0;
    for (int v = 1; v < 60; v += 7) {
        int r = icbrt(v * v * v);
        if (r != v) check += 1000;
        check += icbrt(v * 1000);
    }
    /* sign changes of a few cubics */
    for (int x = -8; x <= 8; x++)
        if (eval_cubic(1, -3, -9, 2, x) > 0)
            check += x + 16;
    *(int *)0xFFFF0000 = check;
    return check & 0xFF;
}
)MC";
}

std::string
srcEdn()
{
    // Signal-processing inner loops: MAC-heavy vector multiplies and
    // an IIR latency kernel, as in the original EDN telecom suite.
    return R"MC(
short a_vec[64];
short b_vec[64];
int y_out[64];

int vec_mpy(short *y, short *x, int scale)
{
    int acc = 0;
    for (int i = 0; i < 64; i++)
        acc += (y[i] * x[i]) >> scale;
    return acc;
}

void mac(short *y, short *x, int *out)
{
    int sum = 0;
    for (int i = 0; i < 64; i++) {
        sum += y[i] * x[i];
        out[i] = sum;
    }
}

int main(void)
{
    for (int i = 0; i < 64; i++) {
        a_vec[i] = (short)(i * 3 - 64);
        b_vec[i] = (short)(127 - i * 2);
    }
    int acc = vec_mpy(a_vec, b_vec, 4);
    mac(a_vec, b_vec, y_out);
    int check = acc + y_out[63] + y_out[7];
    *(int *)0xFFFF0000 = check;
    return check & 0xFF;
}
)MC";
}

std::string
srcHuffbench()
{
    // Frequency counting, code-length assignment and bit packing —
    // the core motions of the original Huffman compressor.
    return R"MC(
unsigned char data[192];
int freq[16];
int lens[16];
unsigned packed[64];

void count_freqs(void)
{
    for (int i = 0; i < 16; i++) freq[i] = 0;
    for (int i = 0; i < 192; i++) {
        freq[data[i] & 15]++;
        freq[(data[i] >> 4) & 15]++;
    }
}

void assign_lengths(void)
{
    /* rank by frequency: more frequent -> shorter code */
    for (int s = 0; s < 16; s++) {
        int rank = 0;
        for (int t = 0; t < 16; t++) {
            if (freq[t] > freq[s]) rank++;
            if (freq[t] == freq[s] && t < s) rank++;
        }
        int len = 2;
        int budget = 4;
        while (rank >= budget) {
            rank -= budget;
            budget <<= 1;
            len++;
        }
        lens[s] = len;
    }
}

int pack_stream(void)
{
    int bitpos = 0;
    for (int i = 0; i < 64; i++) packed[i] = 0;
    for (int i = 0; i < 192; i++) {
        int sym = data[i] & 15;
        int len = lens[sym];
        unsigned code = (unsigned)(sym + 1) & ((1u << len) - 1u);
        int word = bitpos >> 5;
        int off = bitpos & 31;
        packed[word] |= code << off;
        if (off + len > 32)
            packed[word + 1] |= code >> (32 - off);
        bitpos += len;
    }
    return bitpos;
}

int main(void)
{
    unsigned seed = 1u;
    for (int i = 0; i < 192; i++) {
        seed = seed * 1103515245u + 12345u;
        data[i] = (unsigned char)(seed >> 24);
    }
    count_freqs();
    assign_lengths();
    int bits = pack_stream();
    unsigned check = (unsigned)bits;
    for (int i = 0; i < 64; i++)
        check ^= packed[i];
    *(int *)0xFFFF0000 = (int)check;
    return (int)(check & 0xFF);
}
)MC";
}

std::string
srcMatmultInt()
{
    return R"MC(
int A[16][16];
int B[16][16];
int C[16][16];

void matmult(void)
{
    for (int i = 0; i < 16; i++) {
        for (int j = 0; j < 16; j++) {
            int s = 0;
            for (int k = 0; k < 16; k++)
                s += A[i][k] * B[k][j];
            C[i][j] = s;
        }
    }
}

int main(void)
{
    for (int i = 0; i < 16; i++) {
        for (int j = 0; j < 16; j++) {
            A[i][j] = i + j;
            B[i][j] = i - j;
        }
    }
    matmult();
    int check = 0;
    for (int i = 0; i < 16; i++)
        check += C[i][i] + C[i][15 - i];
    *(int *)0xFFFF0000 = check;
    return check & 0xFF;
}
)MC";
}

std::string
srcMd5sum()
{
    // The genuine MD5 compression function over two 64-byte blocks.
    return R"MC(
unsigned K[64] = {
    0xd76aa478u, 0xe8c7b756u, 0x242070dbu, 0xc1bdceeeu,
    0xf57c0fafu, 0x4787c62au, 0xa8304613u, 0xfd469501u,
    0x698098d8u, 0x8b44f7afu, 0xffff5bb1u, 0x895cd7beu,
    0x6b901122u, 0xfd987193u, 0xa679438eu, 0x49b40821u,
    0xf61e2562u, 0xc040b340u, 0x265e5a51u, 0xe9b6c7aau,
    0xd62f105du, 0x02441453u, 0xd8a1e681u, 0xe7d3fbc8u,
    0x21e1cde6u, 0xc33707d6u, 0xf4d50d87u, 0x455a14edu,
    0xa9e3e905u, 0xfcefa3f8u, 0x676f02d9u, 0x8d2a4c8au,
    0xfffa3942u, 0x8771f681u, 0x6d9d6122u, 0xfde5380cu,
    0xa4beea44u, 0x4bdecfa9u, 0xf6bb4b60u, 0xbebfbc70u,
    0x289b7ec6u, 0xeaa127fau, 0xd4ef3085u, 0x04881d05u,
    0xd9d4d039u, 0xe6db99e5u, 0x1fa27cf8u, 0xc4ac5665u,
    0xf4292244u, 0x432aff97u, 0xab9423a7u, 0xfc93a039u,
    0x655b59c3u, 0x8f0ccc92u, 0xffeff47du, 0x85845dd1u,
    0x6fa87e4fu, 0xfe2ce6e0u, 0xa3014314u, 0x4e0811a1u,
    0xf7537e82u, 0xbd3af235u, 0x2ad7d2bbu, 0xeb86d391u
};
int R[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5,  9, 14, 20, 5,  9, 14, 20, 5,  9, 14, 20, 5,  9, 14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21
};
unsigned M[16];
unsigned H[4] = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u};

unsigned rotl(unsigned x, int s)
{
    return (x << s) | (x >> (32 - s));
}

void md5_block(void)
{
    unsigned a = H[0];
    unsigned b = H[1];
    unsigned c = H[2];
    unsigned d = H[3];
    for (int i = 0; i < 64; i++) {
        unsigned f;
        int g;
        if (i < 16) {
            f = (b & c) | (~b & d);
            g = i;
        } else if (i < 32) {
            f = (d & b) | (~d & c);
            g = (5 * i + 1) & 15;
        } else if (i < 48) {
            f = b ^ c ^ d;
            g = (3 * i + 5) & 15;
        } else {
            f = c ^ (b | ~d);
            g = (7 * i) & 15;
        }
        unsigned tmp = d;
        d = c;
        c = b;
        b = b + rotl(a + f + K[i] + M[g], R[i]);
        a = tmp;
    }
    H[0] += a;
    H[1] += b;
    H[2] += c;
    H[3] += d;
}

int main(void)
{
    for (int blk = 0; blk < 2; blk++) {
        for (int i = 0; i < 16; i++)
            M[i] = (unsigned)(blk * 16 + i) * 0x01010101u;
        md5_block();
    }
    unsigned check = H[0] ^ H[1] ^ H[2] ^ H[3];
    *(int *)0xFFFF0000 = (int)check;
    return (int)(check & 0xFF);
}
)MC";
}

std::string
srcMinver()
{
    // 3x3 fixed-point (Q10) matrix inversion with pivot selection,
    // following the original minver's Gauss-Jordan structure.
    return R"MC(
int mat[3][3];
int inv[3][3];

int divq(int num, int den)
{
    /* Q10 fixed-point divide */
    return (num << 10) / den;
}

int mulq(int x, int y)
{
    return (x * y) >> 10;
}

int minver(void)
{
    /* start from the identity in Q10 */
    for (int i = 0; i < 3; i++)
        for (int j = 0; j < 3; j++)
            inv[i][j] = (i == j) ? 1024 : 0;
    for (int col = 0; col < 3; col++) {
        /* pivot: largest magnitude in this column */
        int prow = col;
        for (int r = col + 1; r < 3; r++) {
            int v = mat[r][col];
            int w = mat[prow][col];
            if ((v < 0 ? -v : v) > (w < 0 ? -w : w))
                prow = r;
        }
        if (mat[prow][col] == 0)
            return -1;
        if (prow != col) {
            for (int j = 0; j < 3; j++) {
                int t = mat[prow][j];
                mat[prow][j] = mat[col][j];
                mat[col][j] = t;
                t = inv[prow][j];
                inv[prow][j] = inv[col][j];
                inv[col][j] = t;
            }
        }
        int pivot = mat[col][col];
        for (int j = 0; j < 3; j++) {
            mat[col][j] = divq(mat[col][j], pivot);
            inv[col][j] = divq(inv[col][j], pivot);
        }
        for (int r = 0; r < 3; r++) {
            if (r == col) continue;
            int factor = mat[r][col];
            for (int j = 0; j < 3; j++) {
                mat[r][j] -= mulq(factor, mat[col][j]);
                inv[r][j] -= mulq(factor, inv[col][j]);
            }
        }
    }
    return 0;
}

int main(void)
{
    /* Q10 matrix: [[2,1,0],[1,3,1],[0,1,2]] scaled by 1024 */
    mat[0][0] = 2048; mat[0][1] = 1024; mat[0][2] = 0;
    mat[1][0] = 1024; mat[1][1] = 3072; mat[1][2] = 1024;
    mat[2][0] = 0;    mat[2][1] = 1024; mat[2][2] = 2048;
    int rc = minver();
    int check = rc == 0 ? 0 : 100000;
    for (int i = 0; i < 3; i++)
        for (int j = 0; j < 3; j++)
            check += inv[i][j] * (i * 3 + j + 1);
    *(int *)0xFFFF0000 = check;
    return check & 0xFF;
}
)MC";
}

} // namespace rissp::workloads
