#include "synth/synthesis.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/bits.hh"
#include "util/logging.hh"

namespace rissp
{

double
SynthReport::ffAreaFraction(const TechParams &tech) const
{
    const double ff_area = ffCount * tech.ffAreaGe;
    return ff_area / (combGates + ff_area);
}

double
SynthReport::powerAtKhz(double khz, const TechParams &tech) const
{
    const double mhz = khz / 1000.0;
    const double comb_act =
        combActivity > 0 ? combActivity : tech.risspCombActivity;
    const double ff_act =
        ffActivity > 0 ? ffActivity : tech.risspFfActivity;
    const double units = combGates * comb_act +
        ffCount * tech.ffPowerMultiplier * ff_act;
    const double dyn_uw = units * tech.dynUwPerGeMhz * mhz;
    const double static_uw = baseAreaGe * tech.staticUwPerGe;
    return (dyn_uw + static_uw) / 1000.0;
}

double
SynthReport::epiNanojoules(double cpi, const TechParams &tech) const
{
    // EPI = P(fmax) / fmax * CPI (§4.2.4). mW / MHz = nJ.
    const double p_mw = powerAtKhz(fmaxKhz, tech);
    return p_mw / (fmaxKhz / 1000.0) * cpi;
}

size_t
runFrequencySweep(SynthReport &rpt, const TechParams &tech)
{
    rpt.sweep.clear();
    rpt.fmaxKhz = 0.0;

    // Per-design invariants, hoisted out of the per-point loop: the
    // resolved activities, the flop term of the power model, and the
    // unconstrained-fmax effort normalizer.
    const double comb_act =
        rpt.combActivity > 0 ? rpt.combActivity
                             : tech.risspCombActivity;
    const double ff_act =
        rpt.ffActivity > 0 ? rpt.ffActivity : tech.risspFfActivity;
    const double ff_units =
        rpt.ffCount * tech.ffPowerMultiplier * ff_act;
    const double fmax_raw = 1.0e6 / rpt.criticalPathNs; // kHz
    const double base_area = rpt.baseAreaGe;

    // Defensive clamp: callers bound the point count (kMaxSweepPoints)
    // before sweeping, but reserve() must never see a hostile cast.
    rpt.sweep.reserve(static_cast<size_t>(
        std::min(sweepPointCount(tech), kMaxSweepPoints)));

    double sum_area = 0.0;
    double sum_power = 0.0;
    size_t met = 0;
    for (double f = tech.sweepStartKhz; f <= tech.sweepEndKhz;
         f += tech.sweepStepKhz) {
        FreqPoint pt;
        pt.targetKhz = f;
        pt.slackNs = 1.0e6 / f - rpt.criticalPathNs;
        // The tool upsizes and buffers as the constraint tightens.
        const double effort = f / fmax_raw;
        pt.areaGe = base_area *
            (1.0 + tech.areaEffortAlpha * effort * effort * effort);
        const double mhz = f / 1000.0;
        const double comb_scaled =
            rpt.combGates * pt.areaGe / base_area;
        const double units = comb_scaled * comb_act + ff_units;
        const double dyn_uw = units * tech.dynUwPerGeMhz * mhz;
        const double static_uw = pt.areaGe * tech.staticUwPerGe;
        pt.powerMw = (dyn_uw + static_uw) / 1000.0;
        if (pt.met()) {
            rpt.fmaxKhz = f;
            sum_area += pt.areaGe;
            sum_power += pt.powerMw;
            ++met;
        }
        rpt.sweep.push_back(pt);
    }
    if (met != 0) {
        rpt.avgAreaGe = sum_area / static_cast<double>(met);
        rpt.avgPowerMw = sum_power / static_cast<double>(met);
    }
    return met;
}

SynthesisModel::SynthesisModel(Technology tech,
                               const HwLibrary &library)
    : technology(std::move(tech)), lib(library)
{
}

double
SynthesisModel::combGatesFor(const InstrSubset &subset,
                             bool share) const
{
    // Resource sharing: each resource kind used by at least one
    // stitched block is instantiated once (synthesis "maximizing the
    // resource sharing", §3.3). Per-block decode/imm/switch logic is
    // private and never shared. With share == false (the ablation),
    // every block pays for private primitive instances — the
    // unoptimised stitched netlist before synthesis cleans it up.
    std::array<bool, kNumResourceKinds> used{};
    double own = 0.0;
    double private_datapath = 0.0;
    auto account = [&](Op op) {
        const InstructionBlock &block = lib.block(op);
        for (ResourceKind r : block.resources()) {
            used[static_cast<size_t>(r)] = true;
            private_datapath += resourceCost(r).gates;
        }
        own += block.ownGates();
    };
    for (Op op : subset.ops())
        account(op);
    // Halt support is fixed logic in every RISSP.
    account(Op::Ecall);
    account(Op::Ebreak);

    double datapath = private_datapath;
    if (share) {
        datapath = 0.0;
        for (size_t i = 0; i < kNumResourceKinds; ++i)
            if (used[i])
                datapath += resourceCost(
                    static_cast<ResourceKind>(i)).gates;
    }
    return datapath + own + fixedunits::kFetchCombGe +
        fixedunits::kRfInterfaceGe;
}

double
SynthesisModel::maxBlockDepth(const InstrSubset &subset) const
{
    unsigned depth = 0;
    for (Op op : subset.ops())
        depth = std::max(depth, lib.block(op).pathDepth());
    depth = std::max(depth, lib.block(Op::Ecall).pathDepth());
    return depth;
}

namespace
{

SynthReport
unwrap(Result<SynthReport> report)
{
    if (!report)
        panic("synthesize: %s (use trySynthesize for user-tuned "
              "requests)", report.status().toString().c_str());
    return report.take();
}

} // namespace

SynthReport
SynthesisModel::synthesize(const InstrSubset &subset,
                           const std::string &name) const
{
    return unwrap(synthesizeInternal(subset, name, /*share=*/true));
}

Result<SynthReport>
SynthesisModel::trySynthesize(const InstrSubset &subset,
                              const std::string &name) const
{
    return synthesizeInternal(subset, name, /*share=*/true);
}

SynthReport
SynthesisModel::synthesizeUnshared(const InstrSubset &subset,
                                   const std::string &name) const
{
    return unwrap(synthesizeInternal(subset, name, /*share=*/false));
}

Result<SynthReport>
SynthesisModel::synthesizeInternal(const InstrSubset &subset,
                                   const std::string &name,
                                   bool share) const
{
    if (subset.empty())
        return Status::error(
            ErrorCode::InvalidArgument,
            "cannot synthesize an empty instruction subset");

    SynthReport rpt;
    rpt.name = name;
    rpt.subsetSize = subset.size();
    rpt.combGates = combGatesFor(subset, share);
    rpt.ffCount = fixedunits::kFfCount;
    rpt.baseAreaGe =
        rpt.combGates + rpt.ffCount * technology.ffAreaGe;
    rpt.combActivity = technology.risspCombActivity;
    rpt.ffActivity = technology.risspFfActivity;

    // Timing: deepest stitched block + the ModularEX switch (select
    // depth grows with the number of blocks) + fetch, then the flop
    // sequencing overhead.
    const double switch_levels =
        ceilLog2(static_cast<uint32_t>(subset.size() + 2)) *
        technology.switchLevelDelay;
    const double logic_levels = maxBlockDepth(subset) +
        switch_levels + technology.fetchDepthLevels;
    rpt.criticalPathNs = logic_levels * technology.gateDelayNs +
        technology.ffClkToQPlusSetupNs;

    // The technology's frequency sweep (§4.2.1 for FlexIC): fmax =
    // highest target with positive slack. Specs are bounded at
    // validation (setTechParam), but a hand-built Technology can
    // bypass that — re-check here so a hostile parameter set comes
    // back as a value instead of an unbounded loop.
    if (sweepPointCount(technology) > kMaxSweepPoints)
        return Status::errorf(
            ErrorCode::SynthError,
            "technology '%s' sweeps %.3g points (limit %.0f)",
            technology.name.c_str(), sweepPointCount(technology),
            kMaxSweepPoints);
    if (runFrequencySweep(rpt, technology) == 0)
        return Status::errorf(
            ErrorCode::SynthError,
            "design '%s' meets no sweep point (path %.0f ns)",
            name.c_str(), rpt.criticalPathNs);
    return rpt;
}

SynthReport
SynthesisModel::synthesizePipelined(const InstrSubset &subset,
                                    const std::string &name) const
{
    // Start from the single-cycle design, then split fetch from
    // execute: the fetch levels leave the critical path, a 32-bit
    // instruction register plus bubble/flush control joins the flop
    // count, and the next-pc mux gains a flush leg.
    SynthReport rpt = unwrap(synthesizeInternal(subset, name, true));
    constexpr double kPipelineFfs = 34.0;  // IR + valid/flush bits
    constexpr double kFlushCtlGe = 45.0;
    rpt.ffCount += kPipelineFfs;
    rpt.combGates += kFlushCtlGe;
    rpt.baseAreaGe =
        rpt.combGates + rpt.ffCount * technology.ffAreaGe;

    const double switch_levels =
        ceilLog2(static_cast<uint32_t>(subset.size() + 2)) *
        technology.switchLevelDelay;
    const double logic_levels =
        maxBlockDepth(subset) + switch_levels + 1.0; // flush mux
    rpt.criticalPathNs = logic_levels * technology.gateDelayNs +
        technology.ffClkToQPlusSetupNs;

    // Redo the sweep with the shorter path and the heavier netlist.
    if (runFrequencySweep(rpt, technology) == 0)
        panic("synthesizePipelined: design '%s' meets no sweep "
              "point (path %.0f ns)", name.c_str(),
              rpt.criticalPathNs);
    return rpt;
}

std::map<std::string, double>
SynthesisModel::resourceBreakdown(const InstrSubset &subset) const
{
    std::map<std::string, double> out;
    std::array<bool, kNumResourceKinds> used{};
    for (Op op : subset.ops())
        for (ResourceKind r : lib.block(op).resources())
            used[static_cast<size_t>(r)] = true;
    double own = 0.0;
    for (Op op : subset.ops())
        own += lib.block(op).ownGates();
    for (size_t i = 0; i < kNumResourceKinds; ++i) {
        if (used[i]) {
            const auto kind = static_cast<ResourceKind>(i);
            out[std::string(resourceName(kind))] =
                resourceCost(kind).gates;
        }
    }
    out["block_decode_and_switch"] = own;
    out["fixed_fetch"] = fixedunits::kFetchCombGe;
    out["fixed_rf_interface"] = fixedunits::kRfInterfaceGe;
    return out;
}

} // namespace rissp
