/**
 * @file
 * Process model for Pragmatic's 0.6 µm IGZO-based FlexIC technology.
 *
 * The paper's synthesis and physical-implementation numbers come from a
 * commercial EDA flow on the real PDK; this header is the analytical
 * stand-in. Constants are calibrated so the full-ISA RISSP-RV32E
 * baseline lands near the paper's reported operating point (fmax about
 * 1.7 MHz, average area in the low-thousands of NAND2-equivalents,
 * average power around 1 mW) and so the three FlexIC-specific facts the
 * paper leans on hold:
 *
 *  1. a flip-flop burns ~10x the power of a NAND2 (§4.2.3);
 *  2. IGZO gates at 3 V are slow (kHz-MHz, not GHz);
 *  3. clock-tree buffering for FF-heavy designs is expensive enough to
 *     invert synthesis-area orderings at P&R (§4.3, Figure 10).
 */

#ifndef RISSP_SYNTH_FLEXIC_TECH_HH
#define RISSP_SYNTH_FLEXIC_TECH_HH

namespace rissp
{

/** Technology constants for the FlexIC process at 3 V, typical corner. */
struct FlexIcTech
{
    // ---- timing ----
    double gateDelayNs = 15.4;      ///< NAND2 propagation delay
    double ffClkToQPlusSetupNs = 30.0; ///< sequencing overhead per cycle
    double fetchDepthLevels = 6.0;  ///< pc mux + IMEM interface levels
    double switchLevelDelay = 1.2;  ///< ModularEX switch, per select level

    // ---- area ----
    double ffAreaGe = 4.5;          ///< FF area in NAND2-equivalents
    double rfLatchAreaGe = 2.2;     ///< register-file bit cell
    double nand2AreaUm2 = 420.0;    ///< placed NAND2 footprint
    double placementUtilization = 0.60; ///< core-area utilization

    // ---- power (nominal 3 V) ----
    /** Dynamic power per NAND2-equivalent per MHz at activity 1. */
    double dynUwPerGeMhz = 1.0;
    /** FF power relative to a NAND2 gate (paper §4.2.3: 10x). */
    double ffPowerMultiplier = 10.0;
    /** Static (leakage) power per NAND2-equivalent. */
    double staticUwPerGe = 0.004;
    /** Switching activity of single-cycle RISSP combinational logic. */
    double risspCombActivity = 0.28;
    /** Switching activity of RISSP state flops (pc mostly). */
    double risspFfActivity = 0.41;

    // ---- synthesis behaviour ----
    double sweepStartKhz = 100.0;   ///< §4.2.1 frequency sweep start
    double sweepEndKhz = 3000.0;    ///< sweep end (over-constrained)
    double sweepStepKhz = 25.0;     ///< sweep step
    /** Area inflation as the target frequency approaches fmax (the
     *  synthesis tool upsizing/buffering under tighter constraints). */
    double areaEffortAlpha = 0.12;

    // ---- physical implementation (Figure 10) ----
    double routingOverhead = 1.12;  ///< post-route comb area growth
    double ctsGePerFf = 10.0;       ///< clock-tree buffer GE per FF
    double ctsActivity = 0.55;      ///< clock buffers toggle each cycle
    double implKhz = 300.0;         ///< §4.3 sign-off frequency

    /** Shared default technology instance. */
    static const FlexIcTech &defaults();
};

} // namespace rissp

#endif // RISSP_SYNTH_FLEXIC_TECH_HH
