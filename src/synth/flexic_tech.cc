#include "synth/flexic_tech.hh"

namespace rissp
{

const FlexIcTech &
FlexIcTech::defaults()
{
    static const FlexIcTech tech{};
    return tech;
}

} // namespace rissp
