/**
 * @file
 * Analytical synthesis model for RISSPs, parameterized on a
 * `Technology` (tech/technology.hh; the default is the paper's
 * FlexIC process).
 *
 * Reproduces the §4.2 flow: the unoptimised RISSP (ModularEX stitched
 * to the fixed units) goes through "synthesis", which here means
 * resource sharing across instruction hardware blocks, a logic-depth
 * timing model, and the technology's frequency sweep (FlexIC:
 * 100 kHz - 3 MHz in 25 kHz steps) whose positive-slack points
 * produce the averaged area and power the paper reports
 * (Figures 6-8). The register file is excluded, as in §4.2 ("Each
 * RISSP is synthesized without the RF").
 */

#ifndef RISSP_SYNTH_SYNTHESIS_HH
#define RISSP_SYNTH_SYNTHESIS_HH

#include <map>
#include <string>
#include <vector>

#include "blocks/library.hh"
#include "core/subset.hh"
#include "tech/technology.hh"
#include "util/status.hh"

namespace rissp
{

/** One synthesis run at a target frequency from the sweep. */
struct FreqPoint
{
    double targetKhz = 0;   ///< constraint given to "the tool"
    double slackNs = 0;     ///< positive means timing met
    double areaGe = 0;      ///< NAND2-equivalent area at this effort
    double powerMw = 0;     ///< static + dynamic at this frequency

    bool met() const { return slackNs >= 0.0; }
};

/** Synthesis results for one design. */
struct SynthReport
{
    std::string name;          ///< e.g. "RISSP-armpit"
    size_t subsetSize = 0;     ///< distinct instructions implemented

    double combGates = 0;      ///< combinational NAND2-equivalents
    double ffCount = 0;        ///< flip-flop instances
    double baseAreaGe = 0;     ///< comb + ff area, minimal effort
    double criticalPathNs = 0; ///< logic + sequencing delay
    double fmaxKhz = 0;        ///< highest positive-slack sweep point

    std::vector<FreqPoint> sweep; ///< full 25 kHz-step sweep

    double avgAreaGe = 0;      ///< mean area over positive-slack points
    double avgPowerMw = 0;     ///< mean power over positive-slack points

    /** Switching activities used for this design's power numbers
     *  (bit-serial designs toggle more of their logic per cycle than
     *  single-cycle datapaths, where only one block is enabled). */
    double combActivity = 0;
    double ffActivity = 0;

    /** FF share of placed area (Figure 10 annotates this). */
    double ffAreaFraction(const TechParams &tech) const;

    /** Power at an arbitrary operating point (mW). */
    double powerAtKhz(double khz, const TechParams &tech) const;

    /** Energy per instruction at fmax (nJ), given a CPI (§4.2.4). */
    double epiNanojoules(double cpi, const TechParams &tech) const;
};

/**
 * Run the §4.2.1 frequency sweep for a design whose netlist
 * (combGates, ffCount, baseAreaGe, activities) and criticalPathNs
 * are already filled in: rebuilds `sweep`, sets fmaxKhz and the
 * positive-slack averages, and returns the number of met points
 * (0 = the design meets nothing under this technology, averages
 * untouched). One implementation serves the single-cycle, unshared,
 * pipelined and Serv models. Incremental on purpose: the per-design
 * invariants (activity resolution, the flop power term, the raw
 * fmax) are hoisted out of the ~117-point loop, which previously
 * re-derived them — and copied the whole growing report — at every
 * point.
 */
size_t runFrequencySweep(SynthReport &rpt, const TechParams &tech);

/** The synthesis engine. */
class SynthesisModel
{
  public:
    /** The model owns its technology by value: passing a temporary
     *  (a parsed spec, a derived corner) is safe. */
    explicit SynthesisModel(
        Technology tech = {},
        const HwLibrary &library = HwLibrary::instance());

    /** Synthesize a RISSP for @p subset. The subset must be
     *  non-empty and meet at least one sweep point (panic()
     *  otherwise) — guaranteed for any compiled workload on the
     *  default tech; requests with user-tuned techs go through
     *  trySynthesize(). */
    SynthReport synthesize(const InstrSubset &subset,
                           const std::string &name) const;

    /** Like synthesize(), but an empty subset (InvalidArgument) or a
     *  sweep that meets no point under a user-tuned tech
     *  (SynthError) comes back as a value. */
    Result<SynthReport> trySynthesize(const InstrSubset &subset,
                                      const std::string &name) const;

    /**
     * Ablation: synthesize the *unoptimised* RISSP, i.e. skip the
     * resource-sharing step ("redundancy removal by synthesis
     * tools", Figure 2 Step 3). Every block keeps private copies of
     * its datapath primitives — what stitching alone would produce.
     */
    SynthReport synthesizeUnshared(const InstrSubset &subset,
                                   const std::string &name) const;

    /**
     * §6 extension: a two-stage (fetch | execute) pipelined RISSP.
     * The fetch path leaves the critical path (only the ModularEX
     * side remains), an instruction register and bubble control add
     * flops, and taken control transfers cost a one-cycle bubble, so
     * CPI > 1. @p taken_fraction is the dynamic share of taken
     * branches/jumps (measure it with Rissp + ModularEx counters).
     */
    SynthReport synthesizePipelined(const InstrSubset &subset,
                                    const std::string &name) const;

    /** CPI of the two-stage pipeline for a given taken fraction. */
    static double
    pipelinedCpi(double taken_fraction)
    {
        return 1.0 + taken_fraction; // one bubble per taken transfer
    }

    /** Shared-resource breakdown for reports/ablations:
     *  resource kind -> NAND2-equivalents contributed. */
    std::map<std::string, double>
    resourceBreakdown(const InstrSubset &subset) const;

    const Technology &tech() const { return technology; }

  private:
    double combGatesFor(const InstrSubset &subset,
                        bool share) const;
    double maxBlockDepth(const InstrSubset &subset) const;
    Result<SynthReport>
    synthesizeInternal(const InstrSubset &subset,
                       const std::string &name, bool share) const;

    Technology technology;
    const HwLibrary &lib;
};

/** Fixed-unit costs stitched around ModularEX (Figure 3). */
namespace fixedunits
{
/** Fetch: pc incrementer + next-pc mux + IMEM interface. */
constexpr double kFetchCombGe = 250.0;
/** Register file read/write port glue (the RF array itself is
 *  excluded at synthesis, per §4.2). */
constexpr double kRfInterfaceGe = 80.0;
/** Program counter flops + a couple of control flops. */
constexpr double kFfCount = 34.0;
} // namespace fixedunits

} // namespace rissp

#endif // RISSP_SYNTH_SYNTHESIS_HH
