/**
 * @file
 * ModularEX — the modular execution unit (Step 2 of Figure 2).
 *
 * ModularEX holds the instruction hardware blocks pulled from the
 * pre-verified library for a given subset, plus the switch that routes
 * the fetched instruction to its block. The switch is the partial
 * decoder of §3.3: it only selects which block is enabled; full
 * decoding happens inside each block.
 */

#ifndef RISSP_CORE_MODULAREX_HH
#define RISSP_CORE_MODULAREX_HH

#include <array>
#include <cstdint>

#include "blocks/library.hh"
#include "core/subset.hh"

namespace rissp
{

/** Result of one ModularEX evaluation. */
struct ExResult
{
    bool supported = false;  ///< an enabled block claimed the insn
    BlockOutputs out;        ///< valid when supported
};

/** The stitched execution unit of a RISSP. */
class ModularEx
{
  public:
    /**
     * Pull the blocks for @p subset from @p library. Halt support
     * (ecall/ebreak) is always stitched in: a processor must stop.
     */
    ModularEx(const InstrSubset &subset, const HwLibrary &library);

    /** Evaluate one instruction; unsupported ops return
     *  supported == false (a hardware trap in the real RISSP). */
    ExResult execute(const BlockInputs &in,
                     const Mutation *mut = nullptr) const;

    /** Load-path extension for the block of @p op. */
    uint32_t extendLoadData(Op op, uint32_t raw,
                            const Mutation *mut = nullptr) const;

    const InstrSubset &subset() const { return exSubset; }

    /** Per-op stitched-block map, indexed by (size_t)Op — the
     *  partial decoder's enable lines. The specialized dispatch
     *  cores (sim/exec_core.inc) build their handler tables from
     *  this, so an unstitched op traps exactly like it does through
     *  execute(). */
    const std::array<bool, kNumOps> &enabledOps() const
    {
        return enabled;
    }

    /** Charge one dynamic execution of @p op's block. execute()
     *  accounts for itself; the specialized dispatch cores, which
     *  bypass execute() on the no-mutation path, account here so
     *  execCounts() stays engine-independent. */
    void noteExec(Op op) const
    {
        ++counts[static_cast<size_t>(op)];
    }

    /** Number of stitched blocks (incl. the halt block pair). */
    size_t blockCount() const { return numBlocks; }

    /** Per-op dynamic execution counts since construction. */
    const std::array<uint64_t, kNumOps> &execCounts() const
    {
        return counts;
    }

  private:
    InstrSubset exSubset;
    const HwLibrary &lib;
    std::array<bool, kNumOps> enabled{};
    size_t numBlocks = 0;
    mutable std::array<uint64_t, kNumOps> counts{};
};

} // namespace rissp

#endif // RISSP_CORE_MODULAREX_HH
