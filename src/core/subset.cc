#include "core/subset.hh"

#include <algorithm>

#include "isa/instr.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace rissp
{

InstrSubset::InstrSubset(std::set<Op> ops) : opsSet(std::move(ops))
{
    opsSet.erase(Op::Ecall);
    opsSet.erase(Op::Ebreak);
    opsSet.erase(Op::Invalid);
}

InstrSubset
InstrSubset::fromProgram(const Program &program)
{
    std::set<Op> ops;
    for (uint32_t word : program.textWords()) {
        Instr in = decode(word);
        if (in.valid())
            ops.insert(in.op);
    }
    return InstrSubset(std::move(ops));
}

InstrSubset
InstrSubset::unionOf(const std::vector<InstrSubset> &parts)
{
    std::set<Op> ops;
    for (const InstrSubset &part : parts)
        ops.insert(part.opsSet.begin(), part.opsSet.end());
    return InstrSubset(std::move(ops));
}

InstrSubset
InstrSubset::fullRv32e()
{
    std::set<Op> ops;
    for (size_t i = 0; i < kNumOps; ++i) {
        const Op op = static_cast<Op>(i);
        if (!isCustom(op))
            ops.insert(op);
    }
    return InstrSubset(std::move(ops));
}

Result<InstrSubset>
InstrSubset::tryFromNames(const std::vector<std::string> &names)
{
    std::set<Op> ops;
    for (const std::string &name : names) {
        auto op = opFromName(toLower(name));
        if (!op)
            return Status::errorf(
                ErrorCode::InvalidArgument,
                "unknown instruction '%s' in subset spec",
                name.c_str());
        ops.insert(*op);
    }
    return InstrSubset(std::move(ops));
}

InstrSubset
InstrSubset::fromNames(const std::vector<std::string> &names)
{
    Result<InstrSubset> subset = tryFromNames(names);
    if (!subset)
        panic("InstrSubset::fromNames: %s (validate with "
              "tryFromNames first)",
              subset.status().message().c_str());
    return subset.take();
}

bool
InstrSubset::contains(Op op) const
{
    if (op == Op::Ecall || op == Op::Ebreak)
        return true; // halt support is fixed logic in every RISSP
    return opsSet.count(op) != 0;
}

std::vector<std::string>
InstrSubset::names() const
{
    std::vector<std::string> out;
    out.reserve(opsSet.size());
    for (Op op : opsSet)
        out.emplace_back(opName(op));
    std::sort(out.begin(), out.end());
    return out;
}

std::string
InstrSubset::describe() const
{
    return "[" + join(names(), ", ") + "]";
}

double
InstrSubset::fractionOfFullIsa() const
{
    return static_cast<double>(opsSet.size()) /
        static_cast<double>(kFullIsaSize);
}

size_t
staticInstructionCount(const Program &program)
{
    return program.textSize / 4;
}

} // namespace rissp
