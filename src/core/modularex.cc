#include "core/modularex.hh"

#include "util/logging.hh"

namespace rissp
{

ModularEx::ModularEx(const InstrSubset &subset, const HwLibrary &library)
    : exSubset(subset), lib(library)
{
    for (size_t i = 0; i < kNumOps; ++i) {
        const Op op = static_cast<Op>(i);
        if (subset.contains(op)) {
            enabled[i] = true;
            ++numBlocks;
        }
    }
}

ExResult
ModularEx::execute(const BlockInputs &in, const Mutation *mut) const
{
    ExResult result;
    const Op op = in.insn.op;
    if (op == Op::Invalid || !enabled[static_cast<size_t>(op)])
        return result; // no block claims it: trap
    ++counts[static_cast<size_t>(op)];
    result.supported = true;
    result.out = lib.block(op).execute(in, mut);
    return result;
}

uint32_t
ModularEx::extendLoadData(Op op, uint32_t raw, const Mutation *mut) const
{
    if (op == Op::Invalid || !enabled[static_cast<size_t>(op)])
        panic("extendLoadData for un-stitched block");
    return lib.block(op).extendLoadData(raw, mut);
}

} // namespace rissp
