#include "core/rissp.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace rissp
{

Rissp::Rissp(const InstrSubset &subset, std::string name,
             const HwLibrary &library)
    : risspName(std::move(name)), ex(subset, library)
{
    regs.fill(0);
}

void
Rissp::reset(const Program &program)
{
    pcReg = program.entry;
    regs.fill(0);
    mem.clear();
    const AddrSpan span = program.denseSpan();
    mem.reserveSpan(span.base, span.size);
    program.load(mem);
    dec.build(program, mem);
    stopped = StopReason::Running;
    retired = 0;
    outWords.clear();
    outText.clear();
}

uint32_t
Rissp::reg(unsigned idx) const
{
    if (idx >= kNumRegsE)
        panic("Rissp::reg(%u): out of range", idx);
    return regs[idx];
}

RetireEvent
Rissp::step(const Mutation *mut)
{
    // The mutation contract (pinned by tests/test_dispatch.cc): any
    // non-null Mutation, Kind::None included, drives the gate-level
    // chains; only the plain no-fault step may take the fast core.
    if (mut)
        return stepGate(mut);
    return stepFast();
}

RetireEvent
Rissp::stepFast()
{
    // The specialized switch core with a one-instruction budget: the
    // single-step API (cosim's lock-step loop) inherits the fast
    // path without paying the threaded core's per-entry table build.
    stepScratch.clear();
    runCoreSwitch<true>(1, &stepScratch);
    return stepScratch.front();
}

RetireEvent
Rissp::stepGate(const Mutation *mut)
{
    RetireEvent ev;
    ev.order = retired;
    ev.pc = pcReg;

    // Fetch: IMEM interface reads the word at pc — pre-decoded by
    // index for text-span pcs, decode-on-fetch otherwise.
    const Instr *fetched = dec.fetch(pcReg);
    Instr slow;
    if (!fetched) {
        if (accessWraps(pcReg, 4)) {
            ev.trap = true;
            stopped = StopReason::Trapped;
            return ev;
        }
        slow = decode(mem.loadWord(pcReg));
        fetched = &slow;
    }
    const Instr &in = *fetched;
    ev.raw = in.raw;
    ev.op = in.op;

    // Register file read ports feed ModularEX.
    BlockInputs bin;
    bin.pc = pcReg;
    bin.insn = in;
    if (in.valid()) {
        if (readsRs1(in.op)) {
            bin.rs1Data = regs[in.rs1];
            ev.rs1 = in.rs1;
            ev.rs1Data = bin.rs1Data;
        }
        if (readsRs2(in.op)) {
            bin.rs2Data = regs[in.rs2];
            ev.rs2 = in.rs2;
            ev.rs2Data = bin.rs2Data;
        }
    }

    const ExResult res = ex.execute(bin, mut);
    if (!res.supported) {
        // No stitched block claimed the instruction: hardware trap.
        ev.trap = true;
        stopped = StopReason::Trapped;
        return ev;
    }
    BlockOutputs out = res.out;

    if (out.halt) {
        ev.halt = true;
        stopped = StopReason::Halted;
        ev.nextPc = pcReg;
        ++retired;
        return ev;
    }

    // DMEM interface.
    if (out.memRead) {
        ev.memRead = true;
        ev.memAddr = out.memAddr;
        ev.memBytes = out.memBytes;
        if (accessWraps(out.memAddr, out.memBytes)) {
            ev.trap = true;
            stopped = StopReason::Trapped;
            return ev;
        }
        const uint32_t raw_data =
            out.memBytes == 4 ? mem.loadWord(out.memAddr)
            : out.memBytes == 2 ? mem.loadHalf(out.memAddr)
            : mem.loadByte(out.memAddr);
        // RVFI memData reports the width-extended DMEM data even for
        // rd == x0 (the reference does too); only the register-file
        // write below masks x0.
        out.rdData = ex.extendLoadData(in.op, raw_data, mut);
        ev.memData = out.rdData;
    } else if (out.memWrite) {
        ev.memWrite = true;
        ev.memAddr = out.memAddr;
        ev.memBytes = out.memBytes;
        ev.memData = out.memWdata;
        if (accessWraps(out.memAddr, out.memBytes)) {
            ev.trap = true;
            stopped = StopReason::Trapped;
            return ev;
        }
        if (out.memAddr == mmio::kPutWord && out.memBytes == 4) {
            outWords.push_back(out.memWdata);
        } else if (out.memAddr == mmio::kPutChar) {
            outText.push_back(static_cast<char>(out.memWdata & 0xFF));
        } else {
            switch (out.memBytes) {
              case 4:
                mem.storeWord(out.memAddr, out.memWdata);
                break;
              case 2:
                mem.storeHalf(out.memAddr,
                              static_cast<uint16_t>(out.memWdata));
                break;
              default:
                mem.storeByte(out.memAddr,
                              static_cast<uint8_t>(out.memWdata));
                break;
            }
            if (dec.overlaps(out.memAddr, out.memBytes))
                dec.invalidate(mem, out.memAddr, out.memBytes);
        }
    }

    // Register file write port.
    if (out.rdWrite && out.rdAddr != 0) {
        regs[out.rdAddr] = out.rdData;
        ev.rd = out.rdAddr;
        ev.rdData = out.rdData;
    }

    pcReg = out.nextPc;
    ev.nextPc = pcReg;
    ++retired;
    return ev;
}

// Stamp out the interpreter cores (see the header in exec_core.inc),
// specialized to this RISSP's subset through the hooks above.
#define RISSP_CORE_CLASS Rissp
#define RISSP_CORE_NAME runCoreSwitch
#define RISSP_CORE_THREADED 0
#include "sim/exec_core.inc"
#undef RISSP_CORE_NAME
#undef RISSP_CORE_THREADED

#if RISSP_HAS_COMPUTED_GOTO
#define RISSP_CORE_NAME runCoreThreaded
#define RISSP_CORE_THREADED 1
#include "sim/exec_core.inc"
#undef RISSP_CORE_NAME
#undef RISSP_CORE_THREADED
#endif
#undef RISSP_CORE_CLASS

RunResult
Rissp::run(uint64_t maxSteps)
{
    RisspRunOptions options;
    options.maxSteps = maxSteps;
    return run(options);
}

RunResult
Rissp::run(const RisspRunOptions &options)
{
    if (options.fault || options.gateLevel) {
        // Gate-level engine: every instruction through the stitched
        // structural chains, faults and all.
        RunResult result;
        for (uint64_t i = 0; i < options.maxSteps; ++i) {
            RetireEvent ev = stepGate(options.fault);
            if (options.trace)
                options.trace->push_back(ev);
            if (ev.halt) {
                result.reason = StopReason::Halted;
                result.exitCode = regs[reg::a0];
                result.instret = retired;
                result.stopPc = ev.pc;
                return result;
            }
            if (ev.trap) {
                result.reason = StopReason::Trapped;
                result.instret = retired;
                result.stopPc = ev.pc;
                return result;
            }
        }
        result.reason = StopReason::StepLimit;
        result.instret = retired;
        result.stopPc = pcReg;
        return result;
    }

    const DispatchMode mode = resolveDispatchMode(options.dispatch);
#if RISSP_HAS_COMPUTED_GOTO
    if (mode == DispatchMode::Threaded)
        return options.trace
            ? runCoreThreaded<true>(options.maxSteps, options.trace)
            : runCoreThreaded<false>(options.maxSteps, nullptr);
#else
    (void)mode;
#endif
    return options.trace
        ? runCoreSwitch<true>(options.maxSteps, options.trace)
        : runCoreSwitch<false>(options.maxSteps, nullptr);
}

} // namespace rissp
