/**
 * @file
 * Domain-specific instruction subset extraction (Step 1 of Figure 2).
 *
 * An application (or a set of applications from a domain) is compiled
 * for the full RV32E ISA; the subset extractor then walks the binary
 * and records the distinct instructions used. Following the paper's
 * Table 3 convention, ECALL/EBREAK are not listed in the subset — halt
 * support is part of every RISSP's fixed logic — and the "full ISA"
 * denominator is the 37 computational/memory/control instructions.
 */

#ifndef RISSP_CORE_SUBSET_HH
#define RISSP_CORE_SUBSET_HH

#include <set>
#include <string>
#include <vector>

#include "isa/op.hh"
#include "sim/program.hh"
#include "util/status.hh"

namespace rissp
{

/** Number of listable RV32E base instructions (excludes
 *  ecall/ebreak and custom-extension ops like cmul). */
constexpr size_t kFullIsaSize = kNumOps - 3;

/** A distinct-instruction subset of the RV32E ISA. */
class InstrSubset
{
  public:
    InstrSubset() = default;
    explicit InstrSubset(std::set<Op> ops);

    /** Scan a program's text section (static analysis, like the
     *  paper's objdump-based characterization). */
    static InstrSubset fromProgram(const Program &program);

    /** Union of subsets — a domain of applications. */
    static InstrSubset unionOf(const std::vector<InstrSubset> &parts);

    /** The full RV32E ISA (the RISSP-RV32E baseline). */
    static InstrSubset fullRv32e();

    /** Parse mnemonics, e.g. {"addi","lw","sw"}. A subset spec is
     *  user input: unknown names come back as InvalidArgument. */
    static Result<InstrSubset>
    tryFromNames(const std::vector<std::string> &names);

    /** Parse mnemonics that are known to be valid (panic() on an
     *  unknown name). For trusted callers with hard-coded lists;
     *  user input goes through tryFromNames(). */
    static InstrSubset fromNames(const std::vector<std::string> &names);

    bool contains(Op op) const;
    size_t size() const { return opsSet.size(); }
    bool empty() const { return opsSet.empty(); }
    const std::set<Op> &ops() const { return opsSet; }

    /** Alphabetically sorted mnemonics, Table 3 style. */
    std::vector<std::string> names() const;

    /** "[add, addi, ...]" for report printing. */
    std::string describe() const;

    /** Share of the full ISA, e.g. 0.42 for armpit (§4.1). */
    double fractionOfFullIsa() const;

    bool operator==(const InstrSubset &other) const = default;

  private:
    std::set<Op> opsSet;
};

/** Static instruction count of a program's text section (the
 *  Figure 5 codesize metric is this * 4 bytes). */
size_t staticInstructionCount(const Program &program);

} // namespace rissp

#endif // RISSP_CORE_SUBSET_HH
