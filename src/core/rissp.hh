/**
 * @file
 * The generated RISSP: a single-cycle RV32E-subset processor
 * (Step 3 of Figure 2, Figure 3 microarchitecture).
 *
 * Fetch (PC + incrementer), the 16-entry register file and the memory
 * interfaces are the fixed units; ModularEX executes. One instruction
 * retires per cycle (CPI = 1, §4.2.4). Executing an instruction whose
 * block was not stitched in is a hardware trap — that is what makes a
 * subset processor a *subset* processor.
 *
 * The simulator emits RVFI-style RetireEvents so riscv-formal-style
 * monitors and signature co-simulation against the reference ISS can
 * check it (§3.4.2).
 */

#ifndef RISSP_CORE_RISSP_HH
#define RISSP_CORE_RISSP_HH

#include <memory>
#include <string>

#include "core/modularex.hh"
#include "sim/refsim.hh"

namespace rissp
{

/** Options for Rissp::run(). */
struct RisspRunOptions
{
    /** Stop after this many instructions (StopReason::StepLimit). */
    uint64_t maxSteps = 100'000'000;

    /** Interpreter core for the specialized engine (a pure
     *  performance knob; all modes are bit-identical). */
    DispatchMode dispatch = DispatchMode::Auto;

    /** When set, every RetireEvent is appended here. */
    std::vector<RetireEvent> *trace = nullptr;

    /** Injected netlist fault. Any non-null Mutation — including
     *  Kind::None — routes every instruction through the gate-level
     *  structural engine, preserving the mutation-coverage surface
     *  (the specialized cores never see faults). */
    const Mutation *fault = nullptr;

    /** Force the gate-level engine even with no fault (what run()
     *  always did before the specialized cores existed). */
    bool gateLevel = false;
};

/** A generated instruction-subset processor plus its simulator. */
class Rissp
{
  public:
    /**
     * Build a RISSP for @p subset.
     * @param subset  instruction subset from Step 1
     * @param name    report label, e.g. "RISSP-armpit"
     * @param library the pre-verified block library (Step 0)
     */
    Rissp(const InstrSubset &subset, std::string name,
          const HwLibrary &library = HwLibrary::instance());

    const std::string &name() const { return risspName; }
    const InstrSubset &subset() const { return ex.subset(); }
    const ModularEx &modularEx() const { return ex; }

    /** Reset the machine and load a program image. */
    void reset(const Program &program);

    /**
     * Execute one cycle (one instruction). With @p mut == nullptr
     * this drives the subset-specialized functional core (bit-
     * identical to the gate-level engine, pinned by tests); any
     * non-null @p mut — even Mutation{Kind::None} — forces the full
     * structural gate-level chain.
     */
    RetireEvent step(const Mutation *mut = nullptr);

    /** Run until halt/trap or @p maxSteps cycles. */
    RunResult run(uint64_t maxSteps = 100'000'000);

    /** Run with explicit dispatch/trace/fault options. A fault (or
     *  gateLevel) selects the gate-level engine; otherwise the
     *  subset-specialized interpreter core runs. */
    RunResult run(const RisspRunOptions &options);

    uint32_t pc() const { return pcReg; }
    uint32_t reg(unsigned idx) const;
    /** Direct memory access. Writing into the text span through this
     *  handle bypasses the decoded-instruction cache; call reset()
     *  again before executing such a change (icache semantics). */
    Memory &memory() { return mem; }
    const Memory &memory() const { return mem; }
    uint64_t cycles() const { return retired; } // CPI == 1
    StopReason stopReason() const { return stopped; }

    const std::vector<uint32_t> &outputWords() const { return outWords; }
    const std::string &outputText() const { return outText; }

  private:
    /** One instruction through the gate-level structural engine —
     *  ModularEX evaluates the stitched blocks, with @p mut (which
     *  may be null) threaded into every primitive. This is the
     *  pre-specialization step() body, kept whole as the mutation-
     *  coverage surface and the off-span fallback. */
    RetireEvent stepGate(const Mutation *mut);

    /** One instruction through the specialized core (mut == null). */
    RetireEvent stepFast();

    // Interpreter cores over the pre-decoded text span, stamped out
    // from sim/exec_core.inc — same statement of the semantics as
    // RefSim's, specialized here to the generated subset.
    template <bool kTrace>
    RunResult runCoreSwitch(uint64_t maxSteps,
                            std::vector<RetireEvent> *traceOut);
    template <bool kTrace>
    RunResult runCoreThreaded(uint64_t maxSteps,
                              std::vector<RetireEvent> *traceOut);

    // exec_core.inc hooks: only stitched blocks execute, every
    // retire charges ModularEx's counters, and off-span execution
    // goes through the gate-level engine.
    bool coreTokenEnabled(uint8_t tok) const
    {
        return tok < kNumOps && ex.enabledOps()[tok];
    }
    void coreNoteExec(uint8_t tok) const
    {
        ex.noteExec(static_cast<Op>(tok));
    }
    RetireEvent coreSlowStep() { return stepGate(nullptr); }

    std::string risspName;
    ModularEx ex;
    uint32_t pcReg = 0;
    std::array<uint32_t, kNumRegsE> regs{};
    Memory mem;
    DecodedProgram dec;
    StopReason stopped = StopReason::Running;
    uint64_t retired = 0;
    std::vector<uint32_t> outWords;
    std::string outText;
    std::vector<RetireEvent> stepScratch; ///< stepFast() staging
};

} // namespace rissp

#endif // RISSP_CORE_RISSP_HH
