/**
 * @file
 * The generated RISSP: a single-cycle RV32E-subset processor
 * (Step 3 of Figure 2, Figure 3 microarchitecture).
 *
 * Fetch (PC + incrementer), the 16-entry register file and the memory
 * interfaces are the fixed units; ModularEX executes. One instruction
 * retires per cycle (CPI = 1, §4.2.4). Executing an instruction whose
 * block was not stitched in is a hardware trap — that is what makes a
 * subset processor a *subset* processor.
 *
 * The simulator emits RVFI-style RetireEvents so riscv-formal-style
 * monitors and signature co-simulation against the reference ISS can
 * check it (§3.4.2).
 */

#ifndef RISSP_CORE_RISSP_HH
#define RISSP_CORE_RISSP_HH

#include <memory>
#include <string>

#include "core/modularex.hh"
#include "sim/refsim.hh"

namespace rissp
{

/** A generated instruction-subset processor plus its simulator. */
class Rissp
{
  public:
    /**
     * Build a RISSP for @p subset.
     * @param subset  instruction subset from Step 1
     * @param name    report label, e.g. "RISSP-armpit"
     * @param library the pre-verified block library (Step 0)
     */
    Rissp(const InstrSubset &subset, std::string name,
          const HwLibrary &library = HwLibrary::instance());

    const std::string &name() const { return risspName; }
    const InstrSubset &subset() const { return ex.subset(); }
    const ModularEx &modularEx() const { return ex; }

    /** Reset the machine and load a program image. */
    void reset(const Program &program);

    /** Execute one cycle (one instruction). */
    RetireEvent step(const Mutation *mut = nullptr);

    /** Run until halt/trap or @p maxSteps cycles. */
    RunResult run(uint64_t maxSteps = 100'000'000);

    uint32_t pc() const { return pcReg; }
    uint32_t reg(unsigned idx) const;
    /** Direct memory access. Writing into the text span through this
     *  handle bypasses the decoded-instruction cache; call reset()
     *  again before executing such a change (icache semantics). */
    Memory &memory() { return mem; }
    const Memory &memory() const { return mem; }
    uint64_t cycles() const { return retired; } // CPI == 1
    StopReason stopReason() const { return stopped; }

    const std::vector<uint32_t> &outputWords() const { return outWords; }
    const std::string &outputText() const { return outText; }

  private:
    std::string risspName;
    ModularEx ex;
    uint32_t pcReg = 0;
    std::array<uint32_t, kNumRegsE> regs{};
    Memory mem;
    DecodedProgram dec;
    StopReason stopped = StopReason::Running;
    uint64_t retired = 0;
    std::vector<uint32_t> outWords;
    std::string outText;
};

} // namespace rissp

#endif // RISSP_CORE_RISSP_HH
