/**
 * @file
 * The technology value type: analytical model parameters + identity.
 *
 * The paper's numbers come from one process — Pragmatic's 0.6 µm
 * IGZO-based FlexIC at 3 V — but the cost models themselves are
 * technology-agnostic: timing is logic levels times a gate delay,
 * area is NAND2-equivalents times a footprint, power is capacitance
 * coefficients times activity. `TechParams` is that parameter set;
 * `Technology` adds identity (name, description, supply voltage) so
 * reports can say *which* process a number belongs to, and the
 * registry (tech/registry.hh) can hold several side by side — the
 * cross-technology comparison ("what would this RISSP cost on a
 * silicon node?") the paper motivates but never runs.
 *
 * Models (`SynthesisModel`, `ServModel`, `PhysicalModel`) own their
 * `Technology` **by value**: a caller may pass a temporary corner
 * without creating a dangling reference.
 */

#ifndef RISSP_TECH_TECHNOLOGY_HH
#define RISSP_TECH_TECHNOLOGY_HH

#include <string>
#include <vector>

#include "util/status.hh"

namespace rissp
{

/**
 * Analytical model constants of one process corner. Trivially
 * copyable on purpose: the exploration engine fingerprints the
 * object representation (explore/fingerprint.hh), so every constant
 * an override sets lands in the memo key automatically.
 *
 * Defaults are the FlexIC process at 3 V, typical corner, calibrated
 * so the full-ISA RISSP-RV32E baseline lands near the paper's
 * reported operating point (fmax about 1.7 MHz, average area in the
 * low-thousands of NAND2-equivalents, average power around 1 mW) and
 * so the three FlexIC-specific facts the paper leans on hold:
 *
 *  1. a flip-flop burns ~10x the power of a NAND2 (§4.2.3);
 *  2. IGZO gates at 3 V are slow (kHz-MHz, not GHz);
 *  3. clock-tree buffering for FF-heavy designs is expensive enough
 *     to invert synthesis-area orderings at P&R (§4.3, Figure 10).
 */
struct TechParams
{
    // ---- timing ----
    double gateDelayNs = 15.4;      ///< NAND2 propagation delay
    double ffClkToQPlusSetupNs = 30.0; ///< sequencing overhead per cycle
    double fetchDepthLevels = 6.0;  ///< pc mux + IMEM interface levels
    double switchLevelDelay = 1.2;  ///< ModularEX switch, per select level

    // ---- area ----
    double ffAreaGe = 4.5;          ///< FF area in NAND2-equivalents
    double rfLatchAreaGe = 2.2;     ///< register-file bit cell
    double nand2AreaUm2 = 420.0;    ///< placed NAND2 footprint
    double placementUtilization = 0.60; ///< core-area utilization

    // ---- power ----
    /** Dynamic power per NAND2-equivalent per MHz at activity 1. */
    double dynUwPerGeMhz = 1.0;
    /** FF power relative to a NAND2 gate (paper §4.2.3: 10x). */
    double ffPowerMultiplier = 10.0;
    /** Static (leakage) power per NAND2-equivalent. */
    double staticUwPerGe = 0.004;
    /** Switching activity of single-cycle RISSP combinational logic. */
    double risspCombActivity = 0.28;
    /** Switching activity of RISSP state flops (pc mostly). */
    double risspFfActivity = 0.41;

    // ---- synthesis behaviour ----
    double sweepStartKhz = 100.0;   ///< §4.2.1 frequency sweep start
    double sweepEndKhz = 3000.0;    ///< sweep end (over-constrained)
    double sweepStepKhz = 25.0;     ///< sweep step
    /** Area inflation as the target frequency approaches fmax (the
     *  synthesis tool upsizing/buffering under tighter constraints). */
    double areaEffortAlpha = 0.12;

    // ---- physical implementation (Figure 10) ----
    double routingOverhead = 1.12;  ///< post-route comb area growth
    double ctsGePerFf = 10.0;       ///< clock-tree buffer GE per FF
    double ctsActivity = 0.55;      ///< clock buffers toggle each cycle
    double implKhz = 300.0;         ///< §4.3 sign-off frequency
};

/** A named technology: model constants plus identity. The default
 *  instance is the registry's `flexic-0.6um` entry, bit-identical to
 *  the constants the repo has always used. */
struct Technology : TechParams
{
    std::string name = "flexic-0.6um";
    std::string description =
        "Pragmatic 0.6um IGZO FlexIC, 3.0 V typical corner";
    /** Nominal supply. Identity only — the timing/power effect of a
     *  different voltage is applied by atVoltage(). */
    double supplyVoltageV = 3.0;

    /**
     * Derive a voltage corner: delays scale with (v0/v)^2 (IGZO
     * drive current roughly quadratic in overdrive), the dynamic
     * power coefficient with (v/v0)^2 (CV^2 f) and leakage linearly
     * with v. Name and description are kept; callers rename.
     */
    Technology atVoltage(double volts) const;
};

/** Most frequency-sweep points any technology may specify: bounds
 *  the synthesis cost of a single validated spec (the FlexIC sweep
 *  has 117 points; silicon-65nm 80). */
constexpr double kMaxSweepPoints = 1.0e6;

/** Points the technology's sweep will visit (0 when the window is
 *  empty). A double on purpose: hostile parameters can push the
 *  count beyond size_t. */
inline double
sweepPointCount(const TechParams &params)
{
    if (params.sweepEndKhz < params.sweepStartKhz)
        return 0.0;
    return (params.sweepEndKhz - params.sweepStartKhz) /
        params.sweepStepKhz + 1.0;
}

/**
 * Set one raw model constant by name, e.g. "gateDelayNs". Keys are
 * user input: an unknown key is InvalidArgument, a non-finite,
 * non-positive or otherwise out-of-range value is InvalidArgument
 * naming the field and the accepted range — including derived
 * ranges: a sweep window/step combination exceeding kMaxSweepPoints
 * is rejected (raise sweepStepKhz before widening the window), and
 * the parameter set is left unchanged on any error.
 */
Status setTechParam(TechParams &params, const std::string &key,
                    double value);

/**
 * Apply one `key=value` override to a technology. Accepts every
 * setTechParam() key plus the derived keys:
 *
 *  - `voltage`: re-derive the corner at this supply (atVoltage);
 *  - `ffPowerRatio`: alias for ffPowerMultiplier.
 */
Status applyTechOverride(Technology &tech, const std::string &key,
                         double value);

/** Every key setTechParam() accepts, in declaration order. */
const std::vector<std::string> &techParamKeys();

/** Append one `key=value` override to a spec string (or a name that
 *  is one): first override after the bare name joins with ':',
 *  later ones with ','. The one composition rule behind registry
 *  specs, plan-file word overrides and TechSpec labels. */
std::string appendSpecOverride(std::string spec,
                               const std::string &field);

} // namespace rissp

#endif // RISSP_TECH_TECHNOLOGY_HH
