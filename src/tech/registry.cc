/**
 * @file
 * Built-in technologies and the tech-spec parser.
 */

#include "tech/registry.hh"

#include <exception>

#include "util/logging.hh"
#include "util/strings.hh"

namespace rissp
{

namespace
{

Technology
flexic()
{
    return Technology{};
}

Technology
flexicSlow()
{
    Technology tech = flexic().atVoltage(2.4);
    tech.name = "flexic-0.6um-slow";
    tech.description =
        "Pragmatic 0.6um IGZO FlexIC, 2.4 V slow corner";
    return tech;
}

Technology
flexicFast()
{
    Technology tech = flexic().atVoltage(3.6);
    tech.name = "flexic-0.6um-fast";
    tech.description =
        "Pragmatic 0.6um IGZO FlexIC, 3.6 V fast corner";
    return tech;
}

/**
 * A generic bulk-CMOS node with plausibly scaled constants (order-of-
 * magnitude literature values, not a PDK): gates three orders of
 * magnitude faster than IGZO, a far smaller FF/NAND2 power ratio,
 * cheap clock trees, and a frequency sweep re-centered on the
 * hundreds-of-MHz range the node actually reaches.
 */
Technology
silicon65()
{
    Technology tech;
    tech.name = "silicon-65nm";
    tech.description =
        "Generic 65nm silicon CMOS, 1.2 V typical corner "
        "(scaled constants, not a PDK)";
    tech.supplyVoltageV = 1.2;
    tech.gateDelayNs = 0.05;
    tech.ffClkToQPlusSetupNs = 0.12;
    tech.ffAreaGe = 6.0;
    tech.rfLatchAreaGe = 1.8;
    tech.nand2AreaUm2 = 1.4;
    tech.placementUtilization = 0.70;
    tech.dynUwPerGeMhz = 0.002;
    tech.ffPowerMultiplier = 4.0;
    tech.staticUwPerGe = 0.0015;
    tech.sweepStartKhz = 10'000.0;
    tech.sweepEndKhz = 800'000.0;
    tech.sweepStepKhz = 10'000.0;
    tech.routingOverhead = 1.18;
    tech.ctsGePerFf = 2.0;
    tech.implKhz = 100'000.0;
    return tech;
}

} // namespace

const TechRegistry &
TechRegistry::builtins()
{
    static const TechRegistry registry = [] {
        TechRegistry r;
        for (Technology tech : {flexic(), flexicSlow(), flexicFast(),
                                silicon65()}) {
            const Status added = r.add(std::move(tech));
            if (!added)
                panic("TechRegistry::builtins: %s",
                      added.message().c_str());
        }
        return r;
    }();
    return registry;
}

Status
TechRegistry::add(Technology tech)
{
    if (tech.name.empty())
        return Status::error(ErrorCode::InvalidArgument,
                             "technology has no name");
    if (find(tech.name))
        return Status::errorf(ErrorCode::InvalidArgument,
                              "technology '%s' already registered",
                              tech.name.c_str());
    entries.push_back(std::move(tech));
    return Status::ok();
}

const Technology *
TechRegistry::find(const std::string &name) const
{
    for (const Technology &tech : entries)
        if (tech.name == name)
            return &tech;
    return nullptr;
}

Result<Technology>
TechRegistry::parse(const std::string &spec) const
{
    const size_t colon = spec.find(':');
    const std::string name = spec.substr(0, colon);
    std::vector<std::string> problems;
    ErrorCode code = ErrorCode::InvalidArgument;

    Technology tech; // overrides still validate on an unknown name
    if (const Technology *found = find(name)) {
        tech = *found;
    } else {
        std::vector<std::string> known;
        for (const Technology &t : entries)
            known.push_back(t.name);
        problems.push_back(strFormat(
            "unknown technology '%s' (known: %s)", name.c_str(),
            join(known, ", ").c_str()));
        code = ErrorCode::NotFound;
    }

    if (colon != std::string::npos) {
        for (const std::string &field :
             split(spec.substr(colon + 1), ',')) {
            const size_t eq = field.find('=');
            if (eq == std::string::npos || eq == 0) {
                problems.push_back(strFormat(
                    "override '%s' is not key=value",
                    field.c_str()));
                continue;
            }
            const std::string key = field.substr(0, eq);
            const std::string word = field.substr(eq + 1);
            size_t used = 0;
            double value = 0;
            try {
                value = std::stod(word, &used);
            } catch (const std::exception &) {
                used = 0;
            }
            if (used != word.size() || word.empty()) {
                problems.push_back(strFormat(
                    "override '%s': bad number '%s'", key.c_str(),
                    word.c_str()));
                continue;
            }
            const Status set = applyTechOverride(tech, key, value);
            if (!set)
                problems.push_back(set.message());
        }
        // A modified corner is its own technology: keep the full
        // spec as its name so reports never conflate it with the
        // unmodified base entry.
        tech.name = spec;
    }

    if (!problems.empty())
        return Status::errorf(code, "tech spec '%s': %s",
                              spec.c_str(),
                              join(problems, "; ").c_str());
    return tech;
}

} // namespace rissp
