/**
 * @file
 * Technology parameter access: named overrides with per-field
 * validation, and voltage-corner derivation.
 */

#include "tech/technology.hh"

#include <cmath>

namespace rissp
{

namespace
{

/** Accepted range of one parameter. */
struct ParamRange
{
    double min;
    double max;
};

/** One settable constant. */
struct ParamEntry
{
    const char *key;
    double TechParams::*field;
    ParamRange range;
};

// Activities, utilization and the routing factor have physical
// bounds; everything else just has to be a positive, finite number.
constexpr ParamRange kPositive{1e-9, 1e12};
constexpr ParamRange kFraction{1e-9, 1.0};
constexpr ParamRange kGrowth{1.0, 100.0};

constexpr ParamEntry kParams[] = {
    {"gateDelayNs", &TechParams::gateDelayNs, kPositive},
    {"ffClkToQPlusSetupNs", &TechParams::ffClkToQPlusSetupNs,
     kPositive},
    {"fetchDepthLevels", &TechParams::fetchDepthLevels, kPositive},
    {"switchLevelDelay", &TechParams::switchLevelDelay, kPositive},
    {"ffAreaGe", &TechParams::ffAreaGe, kPositive},
    {"rfLatchAreaGe", &TechParams::rfLatchAreaGe, kPositive},
    {"nand2AreaUm2", &TechParams::nand2AreaUm2, kPositive},
    {"placementUtilization", &TechParams::placementUtilization,
     kFraction},
    {"dynUwPerGeMhz", &TechParams::dynUwPerGeMhz, kPositive},
    {"ffPowerMultiplier", &TechParams::ffPowerMultiplier, kPositive},
    {"staticUwPerGe", &TechParams::staticUwPerGe, kPositive},
    {"risspCombActivity", &TechParams::risspCombActivity, kFraction},
    {"risspFfActivity", &TechParams::risspFfActivity, kFraction},
    {"sweepStartKhz", &TechParams::sweepStartKhz, kPositive},
    {"sweepEndKhz", &TechParams::sweepEndKhz, kPositive},
    {"sweepStepKhz", &TechParams::sweepStepKhz, kPositive},
    {"areaEffortAlpha", &TechParams::areaEffortAlpha, kPositive},
    {"routingOverhead", &TechParams::routingOverhead, kGrowth},
    {"ctsGePerFf", &TechParams::ctsGePerFf, kPositive},
    {"ctsActivity", &TechParams::ctsActivity, kFraction},
    {"implKhz", &TechParams::implKhz, kPositive},
};

constexpr ParamRange kVoltageRange{0.5, 12.0};

Status
outOfRange(const std::string &key, double value,
           const ParamRange &range)
{
    return Status::errorf(
        ErrorCode::InvalidArgument,
        "tech constant '%s': value %g out of range [%g, %g]",
        key.c_str(), value, range.min, range.max);
}

const ParamEntry *
findEntry(const std::string &key)
{
    for (const ParamEntry &entry : kParams)
        if (key == entry.key)
            return &entry;
    return nullptr;
}

/** Validate and commit one field. @p report_key is the key the
 *  caller actually wrote (an alias may differ from the field), so
 *  diagnostics always match the offending override. */
Status
setEntry(TechParams &params, const ParamEntry &entry,
         const std::string &report_key, double value)
{
    if (!std::isfinite(value) || value < entry.range.min ||
        value > entry.range.max)
        return outOfRange(report_key, value, entry.range);
    // Commit on a copy: derived bounds (the sweep point count)
    // must hold before the caller's parameters change.
    TechParams updated = params;
    updated.*entry.field = value;
    if (sweepPointCount(updated) > kMaxSweepPoints)
        return Status::errorf(
            ErrorCode::InvalidArgument,
            "tech constant '%s': value %g makes the frequency "
            "sweep %.3g points (limit %.0f); raise sweepStepKhz "
            "before widening the window",
            report_key.c_str(), value, sweepPointCount(updated),
            kMaxSweepPoints);
    params = updated;
    return Status::ok();
}

} // namespace

Technology
Technology::atVoltage(double volts) const
{
    Technology corner = *this;
    const double delay = (supplyVoltageV / volts) *
        (supplyVoltageV / volts);
    const double dyn = (volts / supplyVoltageV) *
        (volts / supplyVoltageV);
    corner.gateDelayNs *= delay;
    corner.ffClkToQPlusSetupNs *= delay;
    corner.dynUwPerGeMhz *= dyn;
    corner.staticUwPerGe *= volts / supplyVoltageV;
    corner.supplyVoltageV = volts;
    return corner;
}

Status
setTechParam(TechParams &params, const std::string &key,
             double value)
{
    const ParamEntry *entry = findEntry(key);
    if (!entry)
        return Status::errorf(ErrorCode::InvalidArgument,
                              "unknown tech constant '%s'",
                              key.c_str());
    return setEntry(params, *entry, key, value);
}

Status
applyTechOverride(Technology &tech, const std::string &key,
                  double value)
{
    if (key == "voltage") {
        if (!std::isfinite(value) || value < kVoltageRange.min ||
            value > kVoltageRange.max)
            return outOfRange(key, value, kVoltageRange);
        tech = tech.atVoltage(value);
        return Status::ok();
    }
    if (key == "ffPowerRatio") // diagnostics under the typed key
        return setEntry(tech, *findEntry("ffPowerMultiplier"), key,
                        value);
    return setTechParam(tech, key, value);
}

std::string
appendSpecOverride(std::string spec, const std::string &field)
{
    spec += spec.find(':') == std::string::npos ? ':' : ',';
    spec += field;
    return spec;
}

const std::vector<std::string> &
techParamKeys()
{
    static const std::vector<std::string> keys = [] {
        std::vector<std::string> out;
        for (const ParamEntry &entry : kParams)
            out.emplace_back(entry.key);
        return out;
    }();
    return keys;
}

} // namespace rissp
