/**
 * @file
 * The named-technology registry and the tech-spec parser.
 *
 * One registry instance holds the built-in technologies every client
 * shares (`TechRegistry::builtins()`): the paper's FlexIC process,
 * its slow/fast voltage corners, and a generic silicon CMOS node for
 * cross-technology comparisons. Clients select a technology with a
 * *spec string*
 *
 *     <name>[:key=value,...]
 *
 * e.g. `flexic-0.6um` or `flexic-0.6um:voltage=2.4,ffPowerRatio=8` —
 * the grammar `risspgen --tech`, `rissp-explore` plan `tech` lines
 * and `FlowService` requests all share. Specs are user input:
 * parse() returns every per-field problem of one spec in a single
 * Result, never aborts.
 *
 * Adding a technology is registration, not subclassing: build a
 * `Technology` value (usually by overriding a built-in or deriving a
 * voltage corner) and `add()` it; every model downstream is already
 * parameterized on the value.
 */

#ifndef RISSP_TECH_REGISTRY_HH
#define RISSP_TECH_REGISTRY_HH

#include <string>
#include <vector>

#include "tech/technology.hh"
#include "util/status.hh"

namespace rissp
{

/** An ordered collection of named technologies. */
class TechRegistry
{
  public:
    /** An empty registry; most callers want builtins(). */
    TechRegistry() = default;

    /** The shared built-in set: `flexic-0.6um` (the defaults),
     *  `flexic-0.6um-slow` (2.4 V), `flexic-0.6um-fast` (3.6 V) and
     *  `silicon-65nm` (plausibly scaled generic CMOS). */
    static const TechRegistry &builtins();

    /** Register @p tech. A duplicate or empty name is
     *  InvalidArgument. */
    Status add(Technology tech);

    /** Look up a technology by exact name; nullptr when absent. */
    const Technology *find(const std::string &name) const;

    /** Every registered technology, in registration order. */
    const std::vector<Technology> &list() const { return entries; }

    /**
     * Resolve a spec string `<name>[:key=value,...]`. The name must
     * be registered (NotFound lists the known names); overrides go
     * through applyTechOverride() and *every* bad key, bad number
     * and out-of-range value of the spec is reported in one Status.
     * A spec with overrides names the returned technology after the
     * full spec string, so result rows stay distinguishable from
     * the unmodified base technology.
     */
    Result<Technology> parse(const std::string &spec) const;

  private:
    std::vector<Technology> entries;
};

} // namespace rissp

#endif // RISSP_TECH_REGISTRY_HH
