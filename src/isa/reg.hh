/**
 * @file
 * RV32E register file names and limits.
 */

#ifndef RISSP_ISA_REG_HH
#define RISSP_ISA_REG_HH

#include <cstdint>
#include <optional>
#include <string_view>

namespace rissp
{

/** RV32E exposes 16 general-purpose registers (x0..x15). */
constexpr unsigned kNumRegsE = 16;

/** ABI register indices used by the compiler and runtime. */
namespace reg
{
constexpr unsigned zero = 0;
constexpr unsigned ra = 1;
constexpr unsigned sp = 2;
constexpr unsigned gp = 3;
constexpr unsigned tp = 4;
constexpr unsigned t0 = 5;
constexpr unsigned t1 = 6;
constexpr unsigned t2 = 7;
constexpr unsigned s0 = 8;
constexpr unsigned s1 = 9;
constexpr unsigned a0 = 10;
constexpr unsigned a1 = 11;
constexpr unsigned a2 = 12;
constexpr unsigned a3 = 13;
constexpr unsigned a4 = 14;
constexpr unsigned a5 = 15;
} // namespace reg

/** ABI name ("a0") for register index @p idx. */
std::string_view regName(unsigned idx);

/** Parse "x7", "a0", "sp", "fp"... into a register index. */
std::optional<unsigned> regFromName(std::string_view name);

} // namespace rissp

#endif // RISSP_ISA_REG_HH
