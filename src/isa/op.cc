#include "isa/op.hh"

#include <array>
#include <unordered_map>

#include "util/logging.hh"

namespace rissp
{

namespace
{

constexpr uint8_t kOpcOpReg = 0x33;
constexpr uint8_t kOpcOpImm = 0x13;
constexpr uint8_t kOpcLoad = 0x03;
constexpr uint8_t kOpcStore = 0x23;
constexpr uint8_t kOpcBranch = 0x63;
constexpr uint8_t kOpcLui = 0x37;
constexpr uint8_t kOpcAuipc = 0x17;
constexpr uint8_t kOpcJal = 0x6F;
constexpr uint8_t kOpcJalr = 0x67;
constexpr uint8_t kOpcSystem = 0x73;
constexpr uint8_t kOpcCustom0 = 0x0B;

const std::array<OpInfo, kNumOps> kOpTable = {{
    {"add", InstrType::R, kOpcOpReg, 0x0, 0x00},
    {"sub", InstrType::R, kOpcOpReg, 0x0, 0x20},
    {"sll", InstrType::R, kOpcOpReg, 0x1, 0x00},
    {"slt", InstrType::R, kOpcOpReg, 0x2, 0x00},
    {"sltu", InstrType::R, kOpcOpReg, 0x3, 0x00},
    {"xor", InstrType::R, kOpcOpReg, 0x4, 0x00},
    {"srl", InstrType::R, kOpcOpReg, 0x5, 0x00},
    {"sra", InstrType::R, kOpcOpReg, 0x5, 0x20},
    {"or", InstrType::R, kOpcOpReg, 0x6, 0x00},
    {"and", InstrType::R, kOpcOpReg, 0x7, 0x00},

    {"addi", InstrType::I, kOpcOpImm, 0x0, 0x00},
    {"slti", InstrType::I, kOpcOpImm, 0x2, 0x00},
    {"sltiu", InstrType::I, kOpcOpImm, 0x3, 0x00},
    {"xori", InstrType::I, kOpcOpImm, 0x4, 0x00},
    {"ori", InstrType::I, kOpcOpImm, 0x6, 0x00},
    {"andi", InstrType::I, kOpcOpImm, 0x7, 0x00},
    {"slli", InstrType::I, kOpcOpImm, 0x1, 0x00},
    {"srli", InstrType::I, kOpcOpImm, 0x5, 0x00},
    {"srai", InstrType::I, kOpcOpImm, 0x5, 0x20},

    {"lb", InstrType::I, kOpcLoad, 0x0, 0x00},
    {"lh", InstrType::I, kOpcLoad, 0x1, 0x00},
    {"lw", InstrType::I, kOpcLoad, 0x2, 0x00},
    {"lbu", InstrType::I, kOpcLoad, 0x4, 0x00},
    {"lhu", InstrType::I, kOpcLoad, 0x5, 0x00},

    {"jalr", InstrType::I, kOpcJalr, 0x0, 0x00},

    {"sb", InstrType::S, kOpcStore, 0x0, 0x00},
    {"sh", InstrType::S, kOpcStore, 0x1, 0x00},
    {"sw", InstrType::S, kOpcStore, 0x2, 0x00},

    {"beq", InstrType::B, kOpcBranch, 0x0, 0x00},
    {"bne", InstrType::B, kOpcBranch, 0x1, 0x00},
    {"blt", InstrType::B, kOpcBranch, 0x4, 0x00},
    {"bge", InstrType::B, kOpcBranch, 0x5, 0x00},
    {"bltu", InstrType::B, kOpcBranch, 0x6, 0x00},
    {"bgeu", InstrType::B, kOpcBranch, 0x7, 0x00},

    {"lui", InstrType::U, kOpcLui, 0x0, 0x00},
    {"auipc", InstrType::U, kOpcAuipc, 0x0, 0x00},

    {"jal", InstrType::J, kOpcJal, 0x0, 0x00},

    {"cmul", InstrType::R, kOpcCustom0, 0x0, 0x00},

    {"ecall", InstrType::Sys, kOpcSystem, 0x0, 0x00},
    {"ebreak", InstrType::Sys, kOpcSystem, 0x0, 0x00},
}};

const std::unordered_map<std::string_view, Op> &
nameMap()
{
    static const std::unordered_map<std::string_view, Op> map = [] {
        std::unordered_map<std::string_view, Op> m;
        for (size_t i = 0; i < kNumOps; ++i)
            m.emplace(kOpTable[i].name, static_cast<Op>(i));
        return m;
    }();
    return map;
}

} // namespace

const OpInfo &
opInfo(Op op)
{
    if (op >= Op::Invalid)
        panic("opInfo() on invalid operation");
    return kOpTable[static_cast<size_t>(op)];
}

std::string_view
opName(Op op)
{
    return op == Op::Invalid ? "<invalid>" : opInfo(op).name;
}

std::optional<Op>
opFromName(std::string_view name)
{
    auto it = nameMap().find(name);
    if (it == nameMap().end())
        return std::nullopt;
    return it->second;
}

bool
isCustom(Op op)
{
    return op == Op::Cmul;
}

bool
isLoad(Op op)
{
    return op >= Op::Lb && op <= Op::Lhu;
}

bool
isStore(Op op)
{
    return op >= Op::Sb && op <= Op::Sw;
}

bool
isBranch(Op op)
{
    return op >= Op::Beq && op <= Op::Bgeu;
}

bool
isJump(Op op)
{
    return op == Op::Jal || op == Op::Jalr;
}

bool
writesRd(Op op)
{
    switch (opInfo(op).type) {
      case InstrType::R:
      case InstrType::I:
      case InstrType::U:
      case InstrType::J:
        return true;
      default:
        return false;
    }
}

bool
readsRs1(Op op)
{
    switch (opInfo(op).type) {
      case InstrType::R:
      case InstrType::I:
      case InstrType::S:
      case InstrType::B:
        return true;
      default:
        return false;
    }
}

bool
readsRs2(Op op)
{
    switch (opInfo(op).type) {
      case InstrType::R:
      case InstrType::S:
      case InstrType::B:
        return true;
      default:
        return false;
    }
}

} // namespace rissp
