#include "isa/instr.hh"

#include "isa/reg.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace rissp
{

namespace
{

/** Immediate assembly per format (RISC-V spec v2.1 figures). */
int32_t
immI(uint32_t raw)
{
    return sext(bits(raw, 31, 20), 12);
}

int32_t
immS(uint32_t raw)
{
    return sext((bits(raw, 31, 25) << 5) | bits(raw, 11, 7), 12);
}

int32_t
immB(uint32_t raw)
{
    uint32_t v = (bit(raw, 31) << 12) | (bit(raw, 7) << 11) |
        (bits(raw, 30, 25) << 5) | (bits(raw, 11, 8) << 1);
    return sext(v, 13);
}

int32_t
immU(uint32_t raw)
{
    return static_cast<int32_t>(raw & 0xFFFFF000u);
}

int32_t
immJ(uint32_t raw)
{
    uint32_t v = (bit(raw, 31) << 20) | (bits(raw, 19, 12) << 12) |
        (bit(raw, 20) << 11) | (bits(raw, 30, 21) << 1);
    return sext(v, 21);
}

void
checkReg(unsigned r)
{
    if (r >= kNumRegsE)
        panic("register x%u out of range for RV32E", r);
}

} // namespace

Instr
decode(uint32_t raw, bool rve)
{
    Instr in;
    in.raw = raw;
    const uint32_t opc = bits(raw, 6, 0);
    const uint32_t f3 = bits(raw, 14, 12);
    const uint32_t f7 = bits(raw, 31, 25);
    const uint32_t rd = bits(raw, 11, 7);
    const uint32_t rs1 = bits(raw, 19, 15);
    const uint32_t rs2 = bits(raw, 24, 20);

    Op op = Op::Invalid;
    switch (opc) {
      case 0x33: // OP
        switch (f3) {
          case 0x0: op = (f7 == 0x20) ? Op::Sub : Op::Add; break;
          case 0x1: op = Op::Sll; break;
          case 0x2: op = Op::Slt; break;
          case 0x3: op = Op::Sltu; break;
          case 0x4: op = Op::Xor; break;
          case 0x5: op = (f7 == 0x20) ? Op::Sra : Op::Srl; break;
          case 0x6: op = Op::Or; break;
          case 0x7: op = Op::And; break;
        }
        if (op != Op::Invalid && f7 != opInfo(op).funct7)
            op = Op::Invalid;
        break;
      case 0x13: // OP-IMM
        switch (f3) {
          case 0x0: op = Op::Addi; break;
          case 0x1: op = (f7 == 0x00) ? Op::Slli : Op::Invalid; break;
          case 0x2: op = Op::Slti; break;
          case 0x3: op = Op::Sltiu; break;
          case 0x4: op = Op::Xori; break;
          case 0x5:
            op = (f7 == 0x20) ? Op::Srai
                : (f7 == 0x00) ? Op::Srli : Op::Invalid;
            break;
          case 0x6: op = Op::Ori; break;
          case 0x7: op = Op::Andi; break;
        }
        break;
      case 0x03: // LOAD
        switch (f3) {
          case 0x0: op = Op::Lb; break;
          case 0x1: op = Op::Lh; break;
          case 0x2: op = Op::Lw; break;
          case 0x4: op = Op::Lbu; break;
          case 0x5: op = Op::Lhu; break;
        }
        break;
      case 0x23: // STORE
        switch (f3) {
          case 0x0: op = Op::Sb; break;
          case 0x1: op = Op::Sh; break;
          case 0x2: op = Op::Sw; break;
        }
        break;
      case 0x63: // BRANCH
        switch (f3) {
          case 0x0: op = Op::Beq; break;
          case 0x1: op = Op::Bne; break;
          case 0x4: op = Op::Blt; break;
          case 0x5: op = Op::Bge; break;
          case 0x6: op = Op::Bltu; break;
          case 0x7: op = Op::Bgeu; break;
        }
        break;
      case 0x0B: // custom-0
        if (f3 == 0x0 && f7 == 0x00)
            op = Op::Cmul;
        break;
      case 0x37: op = Op::Lui; break;
      case 0x17: op = Op::Auipc; break;
      case 0x6F: op = Op::Jal; break;
      case 0x67: op = (f3 == 0) ? Op::Jalr : Op::Invalid; break;
      case 0x73: // SYSTEM
        if (raw == 0x00000073u)
            op = Op::Ecall;
        else if (raw == 0x00100073u)
            op = Op::Ebreak;
        break;
      default:
        break;
    }

    if (op == Op::Invalid)
        return in;

    in.op = op;
    switch (opInfo(op).type) {
      case InstrType::R:
        in.rd = rd; in.rs1 = rs1; in.rs2 = rs2;
        break;
      case InstrType::I:
        in.rd = rd; in.rs1 = rs1; in.imm = immI(raw);
        // Shift-immediate instructions use only shamt[4:0].
        if (op == Op::Slli || op == Op::Srli || op == Op::Srai)
            in.imm &= 0x1F;
        break;
      case InstrType::S:
        in.rs1 = rs1; in.rs2 = rs2; in.imm = immS(raw);
        break;
      case InstrType::B:
        in.rs1 = rs1; in.rs2 = rs2; in.imm = immB(raw);
        break;
      case InstrType::U:
        in.rd = rd; in.imm = immU(raw);
        break;
      case InstrType::J:
        in.rd = rd; in.imm = immJ(raw);
        break;
      case InstrType::Sys:
        break;
    }

    if (rve) {
        const bool bad =
            (writesRd(op) && in.rd >= kNumRegsE) ||
            (readsRs1(op) && in.rs1 >= kNumRegsE) ||
            (readsRs2(op) && in.rs2 >= kNumRegsE);
        if (bad) {
            in.op = Op::Invalid;
            return in;
        }
    }
    return in;
}

uint32_t
encodeR(Op op, unsigned rd, unsigned rs1, unsigned rs2)
{
    const OpInfo &info = opInfo(op);
    if (info.type != InstrType::R)
        panic("encodeR(%s): not an R-type op",
              std::string(info.name).c_str());
    checkReg(rd); checkReg(rs1); checkReg(rs2);
    return (uint32_t{info.funct7} << 25) | (rs2 << 20) | (rs1 << 15) |
        (uint32_t{info.funct3} << 12) | (rd << 7) | info.opcode;
}

uint32_t
encodeI(Op op, unsigned rd, unsigned rs1, int32_t imm)
{
    const OpInfo &info = opInfo(op);
    if (info.type != InstrType::I)
        panic("encodeI(%s): not an I-type op",
              std::string(info.name).c_str());
    checkReg(rd); checkReg(rs1);
    uint32_t imm12;
    if (op == Op::Slli || op == Op::Srli || op == Op::Srai) {
        if (imm < 0 || imm > 31)
            panic("shift amount %d out of range", imm);
        imm12 = static_cast<uint32_t>(imm) |
            (uint32_t{info.funct7} << 5);
    } else {
        if (!fitsSigned(imm, 12))
            panic("I-immediate %d out of range", imm);
        imm12 = static_cast<uint32_t>(imm) & 0xFFF;
    }
    return (imm12 << 20) | (rs1 << 15) | (uint32_t{info.funct3} << 12) |
        (rd << 7) | info.opcode;
}

uint32_t
encodeS(Op op, unsigned rs1, unsigned rs2, int32_t imm)
{
    const OpInfo &info = opInfo(op);
    if (info.type != InstrType::S)
        panic("encodeS(%s): not an S-type op",
              std::string(info.name).c_str());
    checkReg(rs1); checkReg(rs2);
    if (!fitsSigned(imm, 12))
        panic("S-immediate %d out of range", imm);
    const uint32_t u = static_cast<uint32_t>(imm) & 0xFFF;
    return (bits(u, 11, 5) << 25) | (rs2 << 20) | (rs1 << 15) |
        (uint32_t{info.funct3} << 12) | (bits(u, 4, 0) << 7) |
        info.opcode;
}

uint32_t
encodeB(Op op, unsigned rs1, unsigned rs2, int32_t offset)
{
    const OpInfo &info = opInfo(op);
    if (info.type != InstrType::B)
        panic("encodeB(%s): not a B-type op",
              std::string(info.name).c_str());
    checkReg(rs1); checkReg(rs2);
    if (!fitsSigned(offset, 13) || (offset & 1))
        panic("branch offset %d invalid", offset);
    const uint32_t u = static_cast<uint32_t>(offset);
    return (bit(u, 12) << 31) | (bits(u, 10, 5) << 25) | (rs2 << 20) |
        (rs1 << 15) | (uint32_t{info.funct3} << 12) |
        (bits(u, 4, 1) << 8) | (bit(u, 11) << 7) | info.opcode;
}

uint32_t
encodeU(Op op, unsigned rd, int32_t imm20)
{
    const OpInfo &info = opInfo(op);
    if (info.type != InstrType::U)
        panic("encodeU(%s): not a U-type op",
              std::string(info.name).c_str());
    checkReg(rd);
    if (imm20 < -(1 << 19) || imm20 >= (1 << 20))
        panic("U-immediate %d out of range", imm20);
    return ((static_cast<uint32_t>(imm20) & 0xFFFFF) << 12) |
        (rd << 7) | info.opcode;
}

uint32_t
encodeJ(Op op, unsigned rd, int32_t offset)
{
    const OpInfo &info = opInfo(op);
    if (info.type != InstrType::J)
        panic("encodeJ(%s): not a J-type op",
              std::string(info.name).c_str());
    checkReg(rd);
    if (!fitsSigned(offset, 21) || (offset & 1))
        panic("jal offset %d invalid", offset);
    const uint32_t u = static_cast<uint32_t>(offset);
    return (bit(u, 20) << 31) | (bits(u, 10, 1) << 21) |
        (bit(u, 11) << 20) | (bits(u, 19, 12) << 12) | (rd << 7) |
        info.opcode;
}

uint32_t
encodeSys(Op op)
{
    if (op == Op::Ecall)
        return 0x00000073u;
    if (op == Op::Ebreak)
        return 0x00100073u;
    panic("encodeSys: %s is not a SYSTEM op",
          std::string(opName(op)).c_str());
}

std::string
disassemble(const Instr &in)
{
    if (!in.valid())
        return strFormat(".word 0x%08x", in.raw);
    const std::string name(opName(in.op));
    switch (in.type()) {
      case InstrType::R:
        return strFormat("%s %s, %s, %s", name.c_str(),
                         std::string(regName(in.rd)).c_str(),
                         std::string(regName(in.rs1)).c_str(),
                         std::string(regName(in.rs2)).c_str());
      case InstrType::I:
        if (isLoad(in.op) || in.op == Op::Jalr)
            return strFormat("%s %s, %d(%s)", name.c_str(),
                             std::string(regName(in.rd)).c_str(),
                             in.imm,
                             std::string(regName(in.rs1)).c_str());
        return strFormat("%s %s, %s, %d", name.c_str(),
                         std::string(regName(in.rd)).c_str(),
                         std::string(regName(in.rs1)).c_str(), in.imm);
      case InstrType::S:
        return strFormat("%s %s, %d(%s)", name.c_str(),
                         std::string(regName(in.rs2)).c_str(), in.imm,
                         std::string(regName(in.rs1)).c_str());
      case InstrType::B:
        return strFormat("%s %s, %s, %d", name.c_str(),
                         std::string(regName(in.rs1)).c_str(),
                         std::string(regName(in.rs2)).c_str(), in.imm);
      case InstrType::U:
        return strFormat("%s %s, 0x%x", name.c_str(),
                         std::string(regName(in.rd)).c_str(),
                         static_cast<uint32_t>(in.imm) >> 12);
      case InstrType::J:
        return strFormat("%s %s, %d", name.c_str(),
                         std::string(regName(in.rd)).c_str(), in.imm);
      case InstrType::Sys:
        return name;
    }
    panic("unreachable");
}

std::string
disassemble(uint32_t raw)
{
    return disassemble(decode(raw));
}

} // namespace rissp
