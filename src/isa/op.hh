/**
 * @file
 * RV32I/E operation enumeration and static metadata.
 *
 * The paper's library covers the RV32E base ISA (~40 instructions): the
 * 37 user-level computational, memory and control-transfer instructions
 * of RV32I plus ECALL/EBREAK, restricted to 16 registers. FENCE and CSR
 * instructions are not required by extreme-edge baremetal binaries and
 * are not part of the paper's instruction hardware block library.
 */

#ifndef RISSP_ISA_OP_HH
#define RISSP_ISA_OP_HH

#include <cstdint>
#include <optional>
#include <string_view>

namespace rissp
{

/** Every operation in the RV32E subset library. */
enum class Op : uint8_t
{
    // R-type
    Add, Sub, Sll, Slt, Sltu, Xor, Srl, Sra, Or, And,
    // I-type ALU
    Addi, Slti, Sltiu, Xori, Ori, Andi, Slli, Srli, Srai,
    // I-type loads
    Lb, Lh, Lw, Lbu, Lhu,
    // I-type jump
    Jalr,
    // S-type
    Sb, Sh, Sw,
    // B-type
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    // U-type
    Lui, Auipc,
    // J-type
    Jal,
    // custom-0 extension (§6: the library is "fully extendable to
    // support other groups of RISC-V instructions or even custom
    // instructions"); cmul is a single-cycle low multiply.
    Cmul,
    // SYSTEM
    Ecall, Ebreak,
    // sentinel
    Invalid,
};

/** Number of valid operations (excludes Invalid). */
constexpr size_t kNumOps = static_cast<size_t>(Op::Invalid);

/**
 * X-macro over every valid Op, in exact enum order (checked below).
 * Consumers that need one entry per operation — the interpreter
 * cores in sim/exec_core.inc build their handler tables positionally
 * from it — expand this instead of restating the list, so adding an
 * Op here is the single point of change.
 */
#define RISSP_OP_LIST(X)                                               \
    X(Add) X(Sub) X(Sll) X(Slt) X(Sltu) X(Xor) X(Srl) X(Sra)          \
    X(Or) X(And)                                                      \
    X(Addi) X(Slti) X(Sltiu) X(Xori) X(Ori) X(Andi)                   \
    X(Slli) X(Srli) X(Srai)                                           \
    X(Lb) X(Lh) X(Lw) X(Lbu) X(Lhu)                                   \
    X(Jalr)                                                           \
    X(Sb) X(Sh) X(Sw)                                                 \
    X(Beq) X(Bne) X(Blt) X(Bge) X(Bltu) X(Bgeu)                       \
    X(Lui) X(Auipc)                                                   \
    X(Jal)                                                            \
    X(Cmul)                                                           \
    X(Ecall) X(Ebreak)

namespace detail
{
constexpr bool
opListMatchesEnum()
{
    size_t index = 0;
#define RISSP_OP_CHECK_ORDER(NAME)                                     \
    if (static_cast<size_t>(Op::NAME) != index++)                      \
        return false;
    RISSP_OP_LIST(RISSP_OP_CHECK_ORDER)
#undef RISSP_OP_CHECK_ORDER
    return index == kNumOps;
}
static_assert(opListMatchesEnum(),
              "RISSP_OP_LIST must list every Op in enum order");
} // namespace detail

/** True for custom-extension operations (not part of base RV32E). */
bool isCustom(Op op);

/** RISC-V base instruction formats (Table 2 in the paper). */
enum class InstrType : uint8_t { R, I, S, B, U, J, Sys };

/** Static description of one operation's encoding. */
struct OpInfo
{
    std::string_view name;  ///< canonical lower-case mnemonic
    InstrType type;         ///< base format
    uint8_t opcode;         ///< bits [6:0]
    uint8_t funct3;         ///< bits [14:12] (0 when unused)
    uint8_t funct7;         ///< bits [31:25] (0 when unused)
};

/** Metadata for @p op. Passing Op::Invalid is a program error. */
const OpInfo &opInfo(Op op);

/** Canonical mnemonic for @p op. */
std::string_view opName(Op op);

/** Reverse lookup: mnemonic to operation. */
std::optional<Op> opFromName(std::string_view name);

/** True for lb/lh/lw/lbu/lhu. */
bool isLoad(Op op);

/** True for sb/sh/sw. */
bool isStore(Op op);

/** True for beq..bgeu. */
bool isBranch(Op op);

/** True for jal/jalr. */
bool isJump(Op op);

/** True when the operation writes a destination register. */
bool writesRd(Op op);

/** True when the operation reads rs1. */
bool readsRs1(Op op);

/** True when the operation reads rs2. */
bool readsRs2(Op op);

} // namespace rissp

#endif // RISSP_ISA_OP_HH
