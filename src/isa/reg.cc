#include "isa/reg.hh"

#include <array>
#include <cctype>
#include <unordered_map>

#include "util/logging.hh"

namespace rissp
{

namespace
{

const std::array<std::string_view, kNumRegsE> kAbiNames = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
};

} // namespace

std::string_view
regName(unsigned idx)
{
    if (idx >= kNumRegsE)
        panic("regName(%u): out of range for RV32E", idx);
    return kAbiNames[idx];
}

std::optional<unsigned>
regFromName(std::string_view name)
{
    static const std::unordered_map<std::string_view, unsigned> map = [] {
        std::unordered_map<std::string_view, unsigned> m;
        for (unsigned i = 0; i < kNumRegsE; ++i)
            m.emplace(kAbiNames[i], i);
        m.emplace("fp", 8u); // frame-pointer alias for s0
        return m;
    }();
    auto it = map.find(name);
    if (it != map.end())
        return it->second;
    // Numeric form xN.
    if (name.size() >= 2 && name[0] == 'x') {
        unsigned v = 0;
        for (size_t i = 1; i < name.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(name[i])))
                return std::nullopt;
            v = v * 10 + static_cast<unsigned>(name[i] - '0');
        }
        if (v < kNumRegsE)
            return v;
    }
    return std::nullopt;
}

} // namespace rissp
