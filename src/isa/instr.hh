/**
 * @file
 * Decoded instruction representation plus encode/decode functions.
 */

#ifndef RISSP_ISA_INSTR_HH
#define RISSP_ISA_INSTR_HH

#include <cstdint>
#include <string>

#include "isa/op.hh"

namespace rissp
{

/**
 * A decoded RV32E instruction. The immediate is already sign-extended
 * per the instruction format (shift amounts live in the low 5 bits of
 * imm for slli/srli/srai).
 */
struct Instr
{
    uint32_t raw = 0;        ///< encoded word
    Op op = Op::Invalid;     ///< operation, Invalid if undecodable
    uint8_t rd = 0;          ///< destination register index
    uint8_t rs1 = 0;         ///< first source register index
    uint8_t rs2 = 0;         ///< second source register index
    int32_t imm = 0;         ///< sign-extended immediate

    bool valid() const { return op != Op::Invalid; }
    InstrType type() const { return opInfo(op).type; }
};

/**
 * Decode a raw 32-bit word.
 *
 * @param raw the instruction word
 * @param rve when true, reject registers >= 16 (RV32E constraint)
 * @return decoded instruction; op == Op::Invalid on failure
 */
Instr decode(uint32_t raw, bool rve = true);

/** Encode an R-type instruction. */
uint32_t encodeR(Op op, unsigned rd, unsigned rs1, unsigned rs2);

/** Encode an I-type instruction (ALU-immediate, load, or jalr). */
uint32_t encodeI(Op op, unsigned rd, unsigned rs1, int32_t imm);

/** Encode an S-type store. */
uint32_t encodeS(Op op, unsigned rs1, unsigned rs2, int32_t imm);

/** Encode a B-type branch; @p offset is a byte offset from this pc. */
uint32_t encodeB(Op op, unsigned rs1, unsigned rs2, int32_t offset);

/** Encode a U-type instruction; @p imm20 is the 20-bit upper value. */
uint32_t encodeU(Op op, unsigned rd, int32_t imm20);

/** Encode jal; @p offset is a byte offset from this pc. */
uint32_t encodeJ(Op op, unsigned rd, int32_t offset);

/** Encode ecall/ebreak. */
uint32_t encodeSys(Op op);

/** Render @p instr as assembly text, e.g. "addi a0, sp, -4". */
std::string disassemble(const Instr &instr);

/** Convenience: decode then disassemble a raw word. */
std::string disassemble(uint32_t raw);

} // namespace rissp

#endif // RISSP_ISA_INSTR_HH
