/**
 * @file
 * Physical-implementation model (§4.3, Figure 10).
 *
 * Takes a synthesis report through the remaining FlexIC backend
 * steps the paper describes — floorplanning, clock-tree insertion,
 * place & route — as an analytical model: routing inflates
 * combinational area, every flip-flop costs clock-tree buffers (the
 * effect that makes FF-heavy Serv *larger* than two of the three
 * extreme-edge RISSPs after P&R despite synthesizing smaller), the
 * register file is placed as a macro, and power is signed off at
 * 300 kHz / 3 V typical corner.
 */

#ifndef RISSP_PHYSIMPL_PHYSICAL_HH
#define RISSP_PHYSIMPL_PHYSICAL_HH

#include "synth/synthesis.hh"

namespace rissp
{

/** How the register file is realized on die. */
enum class RfStyle : uint8_t
{
    LatchArray,  ///< RISSP: dedicated 16x32 latch-cell array
    RamMacro,    ///< Serv: RF mapped to on-chip RAM (denser)
};

/** Figure 10 data for one implemented design. */
struct PhysReport
{
    std::string name;
    size_t numInstrs = 0;     ///< annotated on the RISSP layouts

    double combGe = 0;        ///< post-route combinational area
    double ffCount = 0;       ///< flip-flop instances
    double ctsGe = 0;         ///< clock-tree buffer area
    double rfGe = 0;          ///< register file macro area
    double totalGe = 0;       ///< placed NAND2-equivalents

    double dieAreaMm2 = 0;    ///< die area
    double dieXUm = 0;        ///< die X dimension
    double dieYUm = 0;        ///< die Y dimension
    double ffAreaFraction = 0;///< FF share of placed area
    double implKhz = 0;       ///< sign-off frequency (tech.implKhz)
    double powerMw = 0;       ///< total power at the sign-off point
};

/** The backend flow. */
class PhysicalModel
{
  public:
    /** The model owns its technology by value: passing a temporary
     *  (a parsed spec, a derived corner) is safe. */
    explicit PhysicalModel(Technology tech = {});

    /** Implement a synthesized design at tech.implKhz. */
    PhysReport implement(const SynthReport &synth,
                         RfStyle rf_style) const;

  private:
    Technology tech;
};

} // namespace rissp

#endif // RISSP_PHYSIMPL_PHYSICAL_HH
