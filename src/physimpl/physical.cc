#include "physimpl/physical.hh"

#include <cmath>
#include <utility>

namespace rissp
{

namespace
{

/** 16 x 32-bit register file bit count. */
constexpr double kRfBits = 512.0;
/** Address decode + word-line drivers for the latch array. */
constexpr double kRfDecodeGe = 120.0;
/** RAM-macro density relative to a NAND2 per bit. */
constexpr double kRamBitGe = 1.2;
/** Latch-array activity contribution to power (reads dominate). */
constexpr double kRfActivity = 0.06;

} // namespace

PhysicalModel::PhysicalModel(Technology t) : tech(std::move(t))
{
}

PhysReport
PhysicalModel::implement(const SynthReport &synth,
                         RfStyle rf_style) const
{
    PhysReport rpt;
    rpt.name = synth.name;
    rpt.numInstrs = synth.subsetSize;
    rpt.ffCount = synth.ffCount;

    // Routing and buffering grow the combinational netlist.
    rpt.combGe = synth.combGates * tech.routingOverhead;

    // Clock-tree synthesis: buffer area proportional to the flop
    // population. On IGZO at 3 V the buffers are large, which is
    // exactly why Figure 10 inverts the synthesis-area ordering for
    // the bit-serial, flop-heavy Serv.
    rpt.ctsGe = synth.ffCount * tech.ctsGePerFf;

    rpt.rfGe = rf_style == RfStyle::LatchArray
        ? kRfBits * tech.rfLatchAreaGe + kRfDecodeGe
        : kRfBits * kRamBitGe;

    const double ff_area = synth.ffCount * tech.ffAreaGe;
    rpt.totalGe = rpt.combGe + ff_area + rpt.ctsGe + rpt.rfGe;
    // The Figure 10 annotation counts the sequential share of the
    // standard-cell logic (clock tree and RF macro excluded).
    rpt.ffAreaFraction = ff_area / (rpt.combGe + ff_area);

    const double um2 = rpt.totalGe * tech.nand2AreaUm2 /
        tech.placementUtilization;
    rpt.dieAreaMm2 = um2 / 1.0e6;
    // Slightly rectangular floorplan, as in the Figure 10 layouts.
    rpt.dieXUm = std::sqrt(um2) * 1.07;
    rpt.dieYUm = um2 / rpt.dieXUm;

    // Sign-off power at tech.implKhz: logic at the design's
    // activities, clock buffers toggling every cycle, the RF at read
    // activity, plus leakage over the whole die.
    rpt.implKhz = tech.implKhz;
    const double mhz = tech.implKhz / 1000.0;
    const double units = rpt.combGe * synth.combActivity +
        synth.ffCount * tech.ffPowerMultiplier * synth.ffActivity +
        rpt.ctsGe * tech.ctsActivity + rpt.rfGe * kRfActivity;
    const double dyn_uw = units * tech.dynUwPerGeMhz * mhz;
    const double static_uw = rpt.totalGe * tech.staticUwPerGe;
    rpt.powerMw = (dyn_uw + static_uw) / 1000.0;
    return rpt;
}

} // namespace rissp
