#include "verify/spec.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace rissp
{

SpecEffect
specExecute(const Instr &in, uint32_t pc, uint32_t rs1, uint32_t rs2)
{
    SpecEffect fx;
    fx.nextPc = pc + 4;
    const uint32_t imm = static_cast<uint32_t>(in.imm);
    const int32_t simm = in.imm;

    auto set_rd = [&](uint32_t v) {
        fx.writesRd = true;
        fx.rdValue = v;
    };

    switch (in.op) {
      case Op::Add: set_rd(rs1 + rs2); break;
      case Op::Sub: set_rd(rs1 - rs2); break;
      case Op::Sll: set_rd(rs1 << (rs2 & 31)); break;
      case Op::Slt:
        set_rd(asSigned(rs1) < asSigned(rs2) ? 1 : 0);
        break;
      case Op::Sltu: set_rd(rs1 < rs2 ? 1 : 0); break;
      case Op::Xor: set_rd(rs1 ^ rs2); break;
      case Op::Srl: set_rd(rs1 >> (rs2 & 31)); break;
      case Op::Sra:
        set_rd(asUnsigned(asSigned(rs1) >> (rs2 & 31)));
        break;
      case Op::Or: set_rd(rs1 | rs2); break;
      case Op::And: set_rd(rs1 & rs2); break;
      case Op::Cmul: set_rd(rs1 * rs2); break;
      case Op::Addi: set_rd(rs1 + imm); break;
      case Op::Slti: set_rd(asSigned(rs1) < simm ? 1 : 0); break;
      case Op::Sltiu: set_rd(rs1 < imm ? 1 : 0); break;
      case Op::Xori: set_rd(rs1 ^ imm); break;
      case Op::Ori: set_rd(rs1 | imm); break;
      case Op::Andi: set_rd(rs1 & imm); break;
      case Op::Slli: set_rd(rs1 << (imm & 31)); break;
      case Op::Srli: set_rd(rs1 >> (imm & 31)); break;
      case Op::Srai:
        set_rd(asUnsigned(asSigned(rs1) >> (imm & 31)));
        break;
      case Op::Lb:
      case Op::Lbu:
        fx.memRead = true;
        fx.memAddr = rs1 + imm;
        fx.memBytes = 1;
        fx.memSignExtend = in.op == Op::Lb;
        fx.writesRd = true;
        break;
      case Op::Lh:
      case Op::Lhu:
        fx.memRead = true;
        fx.memAddr = rs1 + imm;
        fx.memBytes = 2;
        fx.memSignExtend = in.op == Op::Lh;
        fx.writesRd = true;
        break;
      case Op::Lw:
        fx.memRead = true;
        fx.memAddr = rs1 + imm;
        fx.memBytes = 4;
        fx.writesRd = true;
        break;
      case Op::Sb:
      case Op::Sh:
      case Op::Sw:
        fx.memWrite = true;
        fx.memAddr = rs1 + imm;
        fx.memBytes = in.op == Op::Sb ? 1 : in.op == Op::Sh ? 2 : 4;
        fx.storeValue = rs2;
        break;
      case Op::Beq:
        if (rs1 == rs2) fx.nextPc = pc + imm;
        break;
      case Op::Bne:
        if (rs1 != rs2) fx.nextPc = pc + imm;
        break;
      case Op::Blt:
        if (asSigned(rs1) < asSigned(rs2)) fx.nextPc = pc + imm;
        break;
      case Op::Bge:
        if (asSigned(rs1) >= asSigned(rs2)) fx.nextPc = pc + imm;
        break;
      case Op::Bltu:
        if (rs1 < rs2) fx.nextPc = pc + imm;
        break;
      case Op::Bgeu:
        if (rs1 >= rs2) fx.nextPc = pc + imm;
        break;
      case Op::Lui: set_rd(imm); break;
      case Op::Auipc: set_rd(pc + imm); break;
      case Op::Jal:
        set_rd(pc + 4);
        fx.nextPc = pc + imm;
        break;
      case Op::Jalr:
        set_rd(pc + 4);
        fx.nextPc = (rs1 + imm) & ~1u;
        break;
      case Op::Ecall:
      case Op::Ebreak:
        fx.halt = true;
        break;
      case Op::Invalid:
        panic("specExecute on invalid instruction");
    }
    return fx;
}

uint32_t
specExtendLoad(Op op, uint32_t raw)
{
    switch (op) {
      case Op::Lb:
        return asUnsigned(sext(raw & 0xFF, 8));
      case Op::Lbu:
        return raw & 0xFF;
      case Op::Lh:
        return asUnsigned(sext(raw & 0xFFFF, 16));
      case Op::Lhu:
        return raw & 0xFFFF;
      case Op::Lw:
        return raw;
      default:
        panic("specExtendLoad on non-load");
    }
}

} // namespace rissp
