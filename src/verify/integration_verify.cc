#include "verify/integration_verify.hh"

#include <atomic>

#include "assembler/assembler.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace rissp
{

void
RvfiStreamChecker::push(const RetireEvent &ev)
{
    // Chaining checks between the previous event and this one are
    // flagged on the previous event's index, matching the batch
    // checker's report text exactly.
    if (hasPrev) {
        auto flag_prev = [&](const char *what) {
            rpt.violations.push_back(strFormat(
                "event %zu (pc=0x%08x): %s", index - 1, prev.pc,
                what));
        };
        if (prev.halt || prev.trap)
            flag_prev("retirement after halt/trap");
        else if (ev.pc != prev.nextPc)
            flag_prev("pc chain broken");
    }

    ++rpt.eventsChecked;
    auto flag = [&](const char *what) {
        rpt.violations.push_back(strFormat(
            "event %zu (pc=0x%08x): %s", index, ev.pc, what));
    };
    if (ev.order != index)
        flag("retirement order not monotone");
    if (ev.rd == 0 && ev.rdData != 0)
        flag("x0 written with a non-zero value");
    if (ev.memRead && ev.memWrite)
        flag("simultaneous load and store");
    if ((ev.memRead || ev.memWrite) &&
        ev.memBytes != 1 && ev.memBytes != 2 && ev.memBytes != 4)
        flag("illegal memory access width");
    if (!ev.trap && !ev.halt && (ev.nextPc & 3))
        flag("misaligned next pc");

    prev = ev;
    hasPrev = true;
    ++index;
}

MonitorReport
checkRvfiStream(const std::vector<RetireEvent> &events)
{
    RvfiStreamChecker checker;
    for (const RetireEvent &ev : events)
        checker.push(ev);
    return checker.report();
}

namespace
{

std::string
describeEvent(const RetireEvent &ev)
{
    return strFormat(
        "pc=0x%08x %s rd=x%u rdData=0x%08x mem%s addr=0x%08x "
        "data=0x%08x", ev.pc,
        disassemble(ev.raw).c_str(), ev.rd, ev.rdData,
        ev.memRead ? "R" : ev.memWrite ? "W" : "-", ev.memAddr,
        ev.memData);
}

bool
eventsMatch(const RetireEvent &a, const RetireEvent &b)
{
    return a.pc == b.pc && a.raw == b.raw && a.nextPc == b.nextPc &&
        a.rd == b.rd && a.rdData == b.rdData &&
        a.memRead == b.memRead && a.memWrite == b.memWrite &&
        (!a.memRead && !a.memWrite
         ? true
         : a.memAddr == b.memAddr && a.memData == b.memData &&
             a.memBytes == b.memBytes) &&
        a.halt == b.halt && a.trap == b.trap;
}

/** Fixed-capacity ring of the most recent retirements. */
class EventRing
{
  public:
    explicit EventRing(unsigned capacity) : ring(capacity) {}

    void push(const RetireEvent &ev)
    {
        if (ring.empty())
            return;
        ring[count++ % ring.size()] = ev;
    }

    /** Contents, oldest first. */
    std::vector<RetireEvent> unrolled() const
    {
        const size_t n = count < ring.size() ? count : ring.size();
        std::vector<RetireEvent> out;
        out.reserve(n);
        for (size_t i = 0; i < n; ++i)
            out.push_back(ring[(count - n + i) % ring.size()]);
        return out;
    }

  private:
    std::vector<RetireEvent> ring;
    size_t count = 0;
};

} // namespace

CosimReport
cosimulate(const Program &program, const InstrSubset &subset,
           const CosimOptions &options)
{
    CosimReport rpt;
    RefSim ref;
    ref.reset(program);
    Rissp dut(subset, "cosim-dut");
    dut.reset(program);

    // Streaming: RVFI invariants are checked per step and only the
    // context rings retain events, so memory does not scale with the
    // step budget.
    RvfiStreamChecker monitor;
    EventRing refRing(options.contextEvents);
    EventRing dutRing(options.contextEvents);
    auto divergence_context = [&]() {
        rpt.recentRef = refRing.unrolled();
        rpt.recentDut = dutRing.unrolled();
    };
    for (uint64_t i = 0; i < options.maxSteps; ++i) {
        RetireEvent re = ref.step();
        RetireEvent de = dut.step(options.fault);
        monitor.push(de);
        refRing.push(re);
        dutRing.push(de);
        if (!eventsMatch(re, de)) {
            rpt.firstDivergence = strFormat(
                "step %llu:\n  ref: %s\n  dut: %s",
                static_cast<unsigned long long>(i),
                describeEvent(re).c_str(),
                describeEvent(de).c_str());
            rpt.monitor = monitor.report();
            divergence_context();
            return rpt;
        }
        if (re.halt || re.trap) {
            rpt.instret = i + 1;
            break;
        }
        if (i + 1 == options.maxSteps) {
            rpt.firstDivergence = "step limit reached";
            rpt.monitor = monitor.report();
            divergence_context();
            return rpt;
        }
    }

    // Final architectural state must agree.
    for (unsigned r = 0; r < kNumRegsE; ++r) {
        if (ref.reg(r) != dut.reg(r)) {
            rpt.firstDivergence = strFormat(
                "final x%u: ref=0x%08x dut=0x%08x", r, ref.reg(r),
                dut.reg(r));
            divergence_context();
            return rpt;
        }
    }
    if (program.hasSymbol("signature")) {
        const uint32_t base = program.symbol("signature");
        for (uint32_t off = 0; off < 256; off += 4) {
            const uint32_t rv = ref.memory().loadWord(base + off);
            const uint32_t dv = dut.memory().loadWord(base + off);
            if (rv != dv) {
                rpt.firstDivergence = strFormat(
                    "signature+%u: ref=0x%08x dut=0x%08x", off, rv,
                    dv);
                divergence_context();
                return rpt;
            }
        }
    }
    rpt.monitor = monitor.report();
    rpt.passed = rpt.monitor.passed();
    if (!rpt.passed) {
        rpt.firstDivergence = rpt.monitor.violations.front();
        divergence_context();
    }
    return rpt;
}

CosimReport
cosimulate(const Program &program, const InstrSubset &subset,
           uint64_t max_steps, const Mutation *fault)
{
    CosimOptions options;
    options.maxSteps = max_steps;
    options.fault = fault;
    return cosimulate(program, subset, options);
}

Program
archTestProgram(Op op)
{
    // Build a directed test in assembly: load corner operands,
    // execute the op, store observable results to the signature.
    std::string body = "    .data\nsignature:\n    .space 256\n"
        "scratch:\n    .space 64\n    .text\n_start:\n"
        "    la a5, signature\n    la a4, scratch\n";
    int sig = 0;
    auto store = [&](const std::string &reg_name) {
        body += strFormat("    sw %s, %d(a5)\n", reg_name.c_str(),
                          sig);
        sig += 4;
    };
    const char *corners[] = {"0", "1", "-1", "0x7FFFFFFF",
                             "0x80000000", "0xAAAAAAAA", "5",
                             "-2048"};
    const std::string name(opName(op));
    switch (opInfo(op).type) {
      case InstrType::R:
        for (const char *a : corners) {
            for (const char *b : {"0", "1", "-1", "0x55555555",
                                  "31"}) {
                body += strFormat("    li a0, %s\n    li a1, %s\n", a,
                                  b);
                body += strFormat("    %s a2, a0, a1\n",
                                  name.c_str());
                store("a2");
            }
        }
        break;
      case InstrType::I:
        if (isLoad(op)) {
            body += "    li a0, 0x89ABCDEF\n    sw a0, 0(a4)\n"
                "    li a0, 0x01234567\n    sw a0, 4(a4)\n";
            for (int off = 0; off < 8;
                 off += (op == Op::Lw ? 4
                         : op == Op::Lh || op == Op::Lhu ? 2 : 1)) {
                body += strFormat("    %s a2, %d(a4)\n",
                                  name.c_str(), off);
                store("a2");
            }
        } else if (op == Op::Jalr) {
            body += "    la a0, jalr_target\n"
                "    jalr a2, 1(a0)\n" // bit 0 must clear
                "jalr_back:\n    jal zero, jalr_done\n"
                "jalr_target:\n    addi a3, zero, 77\n"
                "    jalr zero, 0(a2)\n"
                "jalr_done:\n";
            store("a3");
        } else {
            for (const char *a : corners) {
                for (const char *imm : {"0", "1", "-1", "2047",
                                        "-2048"}) {
                    std::string imm_s = imm;
                    if (op == Op::Slli || op == Op::Srli ||
                        op == Op::Srai)
                        imm_s = std::string(imm) == "2047" ? "31"
                            : std::string(imm) == "-2048" ? "17"
                            : std::string(imm) == "-1" ? "1" : imm;
                    body += strFormat("    li a0, %s\n", a);
                    body += strFormat("    %s a2, a0, %s\n",
                                      name.c_str(), imm_s.c_str());
                    store("a2");
                }
            }
        }
        break;
      case InstrType::S: {
        const char *wide = op == Op::Sw ? "4"
            : op == Op::Sh ? "2" : "1";
        body += "    li a0, 0xDEADBEEF\n";
        for (int slot = 0; slot < 4; ++slot) {
            body += strFormat("    %s a0, %d(a4)\n", name.c_str(),
                              slot * std::stoi(wide));
        }
        body += "    lw a2, 0(a4)\n";
        store("a2");
        body += "    lw a2, 4(a4)\n";
        store("a2");
        break;
      }
      case InstrType::B:
        for (const char *a : {"0", "1", "-1", "0x80000000"}) {
            for (const char *b : {"0", "1", "-1"}) {
                // atomic so concurrent callers (parallel test
                // harnesses) always get unique branch labels
                static std::atomic<int> lblCounter{0};
                const int lbl = ++lblCounter;
                body += strFormat(
                    "    li a0, %s\n    li a1, %s\n"
                    "    li a2, 111\n"
                    "    %s a0, a1, bt_%s_%d\n"
                    "    li a2, 222\n"
                    "bt_%s_%d:\n",
                    a, b, name.c_str(), name.c_str(), lbl,
                    name.c_str(), lbl);
                store("a2");
            }
        }
        break;
      case InstrType::U:
        for (const char *imm : {"0", "1", "0xFFFFF", "0x80000"}) {
            body += strFormat("    %s a2, %s\n", name.c_str(), imm);
            store("a2");
        }
        break;
      case InstrType::J:
        body += "    jal a2, jal_t1\n"
            "jal_back:\n    jal zero, jal_done\n"
            "jal_t1:\n    addi a3, zero, 99\n"
            "    jal zero, jal_back\n"
            "jal_done:\n";
        store("a2");
        store("a3");
        break;
      case InstrType::Sys:
        break;
    }
    body += "    ecall\n";
    return assemble(body);
}

Program
randomProgram(uint64_t seed, unsigned num_instrs,
              const InstrSubset &subset)
{
    Rng rng(seed);
    std::vector<Op> pool;
    for (Op op : subset.ops()) {
        if (op == Op::Jalr || op == Op::Jal || op == Op::Auipc)
            continue; // wild jumps are covered by directed tests
        pool.push_back(op);
    }
    if (pool.empty())
        panic("randomProgram: empty usable subset (callers pass a "
              "non-trivial subset)");

    std::string body = "    .data\nsignature:\n    .space 256\n"
        "    .text\n_start:\n    la a5, signature\n";
    // Random initial register state (x1..x14; a5/x15 is the base).
    for (unsigned r = 1; r <= 14; ++r)
        body += strFormat("    li x%u, %d\n", r,
                          static_cast<int32_t>(rng.next32()));

    int label_n = 0;
    auto reg = [&](unsigned lo, unsigned hi) {
        return strFormat("x%u", lo + rng.below(hi - lo + 1));
    };
    for (unsigned i = 0; i < num_instrs; ++i) {
        const Op op = pool[rng.below(
            static_cast<uint32_t>(pool.size()))];
        const std::string name(opName(op));
        switch (opInfo(op).type) {
          case InstrType::R:
            body += strFormat("    %s %s, %s, %s\n", name.c_str(),
                              reg(1, 14).c_str(), reg(0, 14).c_str(),
                              reg(0, 14).c_str());
            break;
          case InstrType::I:
            if (isLoad(op)) {
                const unsigned width =
                    (op == Op::Lw) ? 4
                    : (op == Op::Lh || op == Op::Lhu) ? 2 : 1;
                const unsigned off =
                    rng.below(252 / width) * width;
                body += strFormat("    %s %s, %u(a5)\n",
                                  name.c_str(), reg(1, 14).c_str(),
                                  off);
            } else if (op == Op::Slli || op == Op::Srli ||
                       op == Op::Srai) {
                body += strFormat("    %s %s, %s, %u\n",
                                  name.c_str(), reg(1, 14).c_str(),
                                  reg(0, 14).c_str(), rng.below(32));
            } else {
                body += strFormat("    %s %s, %s, %d\n",
                                  name.c_str(), reg(1, 14).c_str(),
                                  reg(0, 14).c_str(),
                                  rng.range(-2048, 2047));
            }
            break;
          case InstrType::S: {
            const unsigned width = (op == Op::Sw) ? 4
                : (op == Op::Sh) ? 2 : 1;
            const unsigned off = rng.below(252 / width) * width;
            body += strFormat("    %s %s, %u(a5)\n", name.c_str(),
                              reg(0, 14).c_str(), off);
            break;
          }
          case InstrType::B:
            // Forward branch over the next couple of instructions.
            body += strFormat("    %s %s, %s, .Lfwd%d\n",
                              name.c_str(), reg(0, 14).c_str(),
                              reg(0, 14).c_str(), label_n);
            body += strFormat("    addi %s, %s, 1\n",
                              reg(1, 14).c_str(),
                              reg(0, 14).c_str());
            body += strFormat(".Lfwd%d:\n", label_n);
            ++label_n;
            break;
          case InstrType::U:
            body += strFormat("    %s %s, %d\n", name.c_str(),
                              reg(1, 14).c_str(),
                              rng.range(-(1 << 19), (1 << 19) - 1));
            break;
          default:
            break;
        }
    }
    // Dump the register file into the signature.
    for (unsigned r = 1; r <= 14; ++r)
        body += strFormat("    sw x%u, %u(a5)\n", r, (r - 1) * 4);
    body += "    ecall\n";
    return assemble(body);
}

} // namespace rissp
