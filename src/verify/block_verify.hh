/**
 * @file
 * The Figure 4 pre-verification flow for instruction hardware blocks:
 *
 *  (2) a per-block testbench driving directed + constrained-random
 *      vectors against the specification semantics (the Architecture
 *      Test SIG vectors analog);
 *  (3) testbench self-checking via mutation coverage (the MCY
 *      analog): netlist-level faults are injected into the structural
 *      block and the testbench must catch every non-equivalent one;
 *  (4) property assertions over the block interfaces (the SVA +
 *      SymbiYosys analog), checked exhaustively over the vector set.
 *
 * certifyBlock() runs all three and returns the certificate that
 * admits a block into the pre-verified library.
 */

#ifndef RISSP_VERIFY_BLOCK_VERIFY_HH
#define RISSP_VERIFY_BLOCK_VERIFY_HH

#include <string>
#include <vector>

#include "blocks/library.hh"
#include "util/rng.hh"

namespace rissp
{

/** One stimulus for a block testbench. */
struct BlockVector
{
    BlockInputs in;
    uint32_t loadData = 0;    ///< raw DMEM data for load blocks
};

/** Deterministic vector set for @p op: ISA corner cases plus
 *  constrained-random fills. */
std::vector<BlockVector> blockVectors(Op op, uint64_t seed,
                                      unsigned num_random);

/** Result of a block testbench run. */
struct TestbenchReport
{
    Op op = Op::Invalid;
    unsigned vectorsRun = 0;
    unsigned mismatches = 0;
    std::string firstFailure;  ///< description of the first mismatch

    bool passed() const { return mismatches == 0; }
};

/** Drive the structural block against the spec on every vector;
 *  @p mut optionally injects a fault (used by mutation coverage). */
TestbenchReport runBlockTestbench(Op op,
                                  const std::vector<BlockVector> &vecs,
                                  const Mutation *mut = nullptr);

/** One property-assertion outcome. */
struct PropertyResult
{
    std::string name;
    unsigned violations = 0;
};

/** Interface/architectural invariants, checked over the vector set:
 *  x0 writes, pc+4 default next-pc, port exclusivity, halt onlyness,
 *  target alignment. */
std::vector<PropertyResult>
checkBlockProperties(Op op, const std::vector<BlockVector> &vecs);

/** Mutation-coverage outcome (the testbench self-check). */
struct MutationReport
{
    Op op = Op::Invalid;
    unsigned mutantsGenerated = 0;
    unsigned mutantsEquivalent = 0;  ///< output-identical: filtered
    unsigned mutantsKilled = 0;
    std::vector<std::string> survivors; ///< live non-equivalent mutants

    bool
    fullCoverage() const
    {
        return mutantsKilled + mutantsEquivalent == mutantsGenerated;
    }
};

/** All mutation kinds applicable to any block, parameterized. */
std::vector<Mutation> mutationCatalogue();

/** Inject every catalogue mutant into @p op's block and check the
 *  testbench kills each non-equivalent one. */
MutationReport runMutationCoverage(Op op,
                                   const std::vector<BlockVector> &vecs);

/** Run the complete Figure 4 flow for one block. */
BlockCert certifyBlock(Op op, uint64_t seed = 0xB10C,
                       unsigned num_random = 400);

/** Certify every block and record the results in @p library. */
void certifyLibrary(HwLibrary &library, uint64_t seed = 0xB10C,
                    unsigned num_random = 400);

} // namespace rissp

#endif // RISSP_VERIFY_BLOCK_VERIFY_HH
