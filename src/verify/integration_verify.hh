/**
 * @file
 * Integration-level verification of generated RISSPs (§3.4.2):
 *
 *  - architectural signature tests per instruction (the RISCOF flow:
 *    run directed tests on the RISSP, compare the signature a golden
 *    reference produces — our RefSim plays Spike);
 *  - RVFI retirement-trace monitors (the riscv-formal flow): pc
 *    chaining, register-file consistency, memory access legality;
 *  - lock-step co-simulation on constrained-random programs.
 */

#ifndef RISSP_VERIFY_INTEGRATION_VERIFY_HH
#define RISSP_VERIFY_INTEGRATION_VERIFY_HH

#include "core/rissp.hh"
#include "core/subset.hh"
#include "sim/refsim.hh"

namespace rissp
{

/** RVFI monitor verdict. */
struct MonitorReport
{
    uint64_t eventsChecked = 0;
    std::vector<std::string> violations;

    bool passed() const { return violations.empty(); }
};

/** Check an RVFI stream for per-event and chaining invariants. */
MonitorReport checkRvfiStream(const std::vector<RetireEvent> &events);

/** Lock-step co-simulation verdict. */
struct CosimReport
{
    bool passed = false;
    uint64_t instret = 0;
    std::string firstDivergence;
    MonitorReport monitor;   ///< RVFI checks on the RISSP's stream
};

/**
 * Run @p program on a RISSP built for @p subset and on the reference
 * ISS, comparing every retirement event, the final register file and
 * the final memory signature region (symbol "signature", when the
 * program defines it).
 *
 * @param fault optional netlist fault injected into the RISSP's
 *        execution (mutation testing at the integration level): a
 *        non-equivalent fault must surface as a divergence, which is
 *        how the mismatch path of the verification flow is exercised
 *        end-to-end.
 */
CosimReport cosimulate(const Program &program,
                       const InstrSubset &subset,
                       uint64_t max_steps = 10'000'000,
                       const Mutation *fault = nullptr);

/**
 * Directed architectural test for one instruction: a program that
 * exercises the op on corner operands and stores results to the
 * signature region.
 */
Program archTestProgram(Op op);

/** Constrained-random terminating program (forward branches only),
 *  for trace-level fuzzing of RISSP vs reference. */
Program randomProgram(uint64_t seed, unsigned num_instrs,
                      const InstrSubset &subset);

} // namespace rissp

#endif // RISSP_VERIFY_INTEGRATION_VERIFY_HH
