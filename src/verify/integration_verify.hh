/**
 * @file
 * Integration-level verification of generated RISSPs (§3.4.2):
 *
 *  - architectural signature tests per instruction (the RISCOF flow:
 *    run directed tests on the RISSP, compare the signature a golden
 *    reference produces — our RefSim plays Spike);
 *  - RVFI retirement-trace monitors (the riscv-formal flow): pc
 *    chaining, register-file consistency, memory access legality;
 *  - lock-step co-simulation on constrained-random programs.
 */

#ifndef RISSP_VERIFY_INTEGRATION_VERIFY_HH
#define RISSP_VERIFY_INTEGRATION_VERIFY_HH

#include "core/rissp.hh"
#include "core/subset.hh"
#include "sim/refsim.hh"

namespace rissp
{

/** RVFI monitor verdict. */
struct MonitorReport
{
    uint64_t eventsChecked = 0;
    std::vector<std::string> violations;

    bool passed() const { return violations.empty(); }
};

/**
 * Incremental RVFI monitor: push() one retirement event at a time and
 * the same per-event and chaining invariants as checkRvfiStream() are
 * applied as the stream flows, holding only the previous event —
 * O(violations) memory instead of O(instret). For any event sequence,
 * pushing all events then calling report() yields a MonitorReport
 * identical to checkRvfiStream() on the equivalent vector (covered by
 * test_verify).
 */
class RvfiStreamChecker
{
  public:
    /** Check @p ev as the next retirement in the stream. */
    void push(const RetireEvent &ev);

    /** Verdict over everything pushed so far. */
    const MonitorReport &report() const { return rpt; }

  private:
    MonitorReport rpt;
    RetireEvent prev;
    bool hasPrev = false;
    size_t index = 0;
};

/** Check an RVFI stream for per-event and chaining invariants. */
MonitorReport checkRvfiStream(const std::vector<RetireEvent> &events);

/** Lock-step co-simulation verdict. */
struct CosimReport
{
    bool passed = false;
    uint64_t instret = 0;
    std::string firstDivergence;
    MonitorReport monitor;   ///< RVFI checks on the RISSP's stream

    /** Divergence context: the last few retirements before the stop
     *  (oldest first, the divergent step last), bounded by
     *  CosimOptions::contextEvents. Empty on a clean pass. */
    std::vector<RetireEvent> recentRef;
    std::vector<RetireEvent> recentDut;
};

/** Knobs for cosimulate(). */
struct CosimOptions
{
    uint64_t maxSteps = 10'000'000;
    /** Optional netlist fault injected into the RISSP's execution
     *  (mutation testing at the integration level): a non-equivalent
     *  fault must surface as a divergence, which is how the mismatch
     *  path of the verification flow is exercised end-to-end. */
    const Mutation *fault = nullptr;
    /** Ring-buffer depth for CosimReport::recentRef/recentDut. */
    unsigned contextEvents = 8;
};

/**
 * Run @p program on a RISSP built for @p subset and on the reference
 * ISS, comparing every retirement event, the final register file and
 * the final memory signature region (symbol "signature", when the
 * program defines it). RVFI invariants are checked incrementally per
 * step (RvfiStreamChecker) and only a small ring of recent events is
 * retained for context, so memory stays O(1) in instret.
 */
CosimReport cosimulate(const Program &program,
                       const InstrSubset &subset,
                       const CosimOptions &options);

/** Convenience overload with the historical signature. */
CosimReport cosimulate(const Program &program,
                       const InstrSubset &subset,
                       uint64_t max_steps = 10'000'000,
                       const Mutation *fault = nullptr);

/**
 * Directed architectural test for one instruction: a program that
 * exercises the op on corner operands and stores results to the
 * signature region.
 */
Program archTestProgram(Op op);

/** Constrained-random terminating program (forward branches only),
 *  for trace-level fuzzing of RISSP vs reference. */
Program randomProgram(uint64_t seed, unsigned num_instrs,
                      const InstrSubset &subset);

} // namespace rissp

#endif // RISSP_VERIFY_INTEGRATION_VERIFY_HH
