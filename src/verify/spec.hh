/**
 * @file
 * Pure ISA specification semantics for single instructions.
 *
 * This is the "instruction semantics" golden model the Figure 4 flow
 * verifies hardware blocks against. It is written with plain C++
 * operators — a third implementation, independent from both the
 * reference ISS switch and the structural gate-level blocks.
 */

#ifndef RISSP_VERIFY_SPEC_HH
#define RISSP_VERIFY_SPEC_HH

#include "isa/instr.hh"

namespace rissp
{

/** Architectural effect of one instruction per the ISA manual. */
struct SpecEffect
{
    uint32_t nextPc = 0;
    bool writesRd = false;
    uint32_t rdValue = 0;       ///< pre-x0-masking value
    bool memRead = false;
    bool memWrite = false;
    uint32_t memAddr = 0;
    uint32_t storeValue = 0;
    unsigned memBytes = 0;
    bool memSignExtend = false;
    bool halt = false;
};

/** Evaluate @p in at @p pc with register operands @p rs1 / @p rs2.
 *  Loads report address/width/extension; the loaded value is
 *  produced by specExtendLoad(). */
SpecEffect specExecute(const Instr &in, uint32_t pc, uint32_t rs1,
                       uint32_t rs2);

/** Specification load extension (lane select + sign/zero extend). */
uint32_t specExtendLoad(Op op, uint32_t raw);

} // namespace rissp

#endif // RISSP_VERIFY_SPEC_HH
