#include "verify/block_verify.hh"

#include "isa/reg.hh"
#include "util/bits.hh"
#include "util/logging.hh"
#include "verify/spec.hh"

namespace rissp
{

namespace
{

/** ISA corner-case operand values (the directed part of the
 *  Architecture Test SIG vectors). */
const uint32_t kCornerValues[] = {
    0x00000000, 0x00000001, 0xFFFFFFFF, 0x7FFFFFFF, 0x80000000,
    0x0000FFFF, 0xFFFF0000, 0x00008000, 0xAAAAAAAA, 0x55555555,
    0x00000080, 0xFFFFFF7F, 0x7FFFFFFE, 0x80000001,
};

/** Random encodable instruction of operation @p op. */
Instr
randomInstr(Op op, Rng &rng)
{
    const unsigned rd = rng.below(kNumRegsE);
    const unsigned rs1 = rng.below(kNumRegsE);
    const unsigned rs2 = rng.below(kNumRegsE);
    uint32_t word = 0;
    switch (opInfo(op).type) {
      case InstrType::R:
        word = encodeR(op, rd, rs1, rs2);
        break;
      case InstrType::I:
        if (op == Op::Slli || op == Op::Srli || op == Op::Srai)
            word = encodeI(op, rd, rs1, rng.range(0, 31));
        else
            word = encodeI(op, rd, rs1, rng.range(-2048, 2047));
        break;
      case InstrType::S:
        word = encodeS(op, rs1, rs2, rng.range(-2048, 2047));
        break;
      case InstrType::B:
        word = encodeB(op, rs1, rs2, rng.range(-2048, 2047) * 2);
        break;
      case InstrType::U:
        word = encodeU(op, rd,
                       rng.range(-(1 << 19), (1 << 19) - 1));
        break;
      case InstrType::J:
        word = encodeJ(op, rd,
                       rng.range(-(1 << 19), (1 << 19) - 1) * 2);
        break;
      case InstrType::Sys:
        word = encodeSys(op);
        break;
    }
    return decode(word);
}

} // namespace

std::vector<BlockVector>
blockVectors(Op op, uint64_t seed, unsigned num_random)
{
    Rng rng(seed ^ (static_cast<uint64_t>(op) << 32));
    std::vector<BlockVector> out;

    // Directed: every pair of corner operand values.
    for (uint32_t a : kCornerValues) {
        for (uint32_t b : kCornerValues) {
            BlockVector v;
            v.in.pc = 0x1000;
            v.in.insn = randomInstr(op, rng);
            v.in.rs1Data = a;
            v.in.rs2Data = b;
            v.loadData = a ^ b;
            out.push_back(v);
        }
    }
    // Constrained-random fills.
    for (unsigned i = 0; i < num_random; ++i) {
        BlockVector v;
        v.in.pc = rng.next32() & ~3u;
        v.in.insn = randomInstr(op, rng);
        v.in.rs1Data = rng.next32();
        v.in.rs2Data = rng.next32();
        v.loadData = rng.next32();
        out.push_back(v);
    }
    return out;
}

TestbenchReport
runBlockTestbench(Op op, const std::vector<BlockVector> &vecs,
                  const Mutation *mut)
{
    const InstructionBlock &block = HwLibrary::instance().block(op);
    TestbenchReport rpt;
    rpt.op = op;
    for (const BlockVector &v : vecs) {
        ++rpt.vectorsRun;
        const BlockOutputs out = block.execute(v.in, mut);
        const SpecEffect fx = specExecute(v.in.insn, v.in.pc,
                                          v.in.rs1Data, v.in.rs2Data);
        std::string diff;
        if (out.halt != fx.halt)
            diff = "halt flag";
        else if (!fx.halt && out.nextPc != fx.nextPc)
            diff = strFormat("next_pc 0x%08x != 0x%08x", out.nextPc,
                             fx.nextPc);
        else if (out.memRead != fx.memRead ||
                 out.memWrite != fx.memWrite)
            diff = "memory strobes";
        else if (fx.memRead &&
                 (out.memAddr != fx.memAddr ||
                  out.memBytes != fx.memBytes ||
                  out.memSignExtend != fx.memSignExtend))
            diff = "load request";
        else if (fx.memWrite &&
                 (out.memAddr != fx.memAddr ||
                  out.memBytes != fx.memBytes ||
                  out.memWdata != fx.storeValue))
            diff = "store request";
        else if (fx.writesRd != out.rdWrite)
            diff = "rd write strobe";
        else if (fx.writesRd && !fx.memRead) {
            const uint32_t expect =
                v.in.insn.rd == 0 ? 0 : fx.rdValue;
            if (out.rdData != expect)
                diff = strFormat("rd value 0x%08x != 0x%08x",
                                 out.rdData, expect);
        }
        if (diff.empty() && fx.memRead) {
            // Phase 2 of the load: lane select and extension.
            const uint32_t got = block.extendLoadData(v.loadData,
                                                      mut);
            const uint32_t expect =
                specExtendLoad(op, v.loadData);
            if (got != expect)
                diff = strFormat("load extend 0x%08x != 0x%08x",
                                 got, expect);
        }
        if (!diff.empty()) {
            if (rpt.mismatches == 0)
                rpt.firstFailure = strFormat(
                    "%s: %s (rs1=0x%08x rs2=0x%08x)",
                    std::string(opName(op)).c_str(), diff.c_str(),
                    v.in.rs1Data, v.in.rs2Data);
            ++rpt.mismatches;
        }
    }
    return rpt;
}

std::vector<PropertyResult>
checkBlockProperties(Op op, const std::vector<BlockVector> &vecs)
{
    const InstructionBlock &block = HwLibrary::instance().block(op);
    PropertyResult p_x0{"x0_never_written_nonzero", 0};
    PropertyResult p_linear{"nonbranch_nextpc_is_pc_plus_4", 0};
    PropertyResult p_ports{"mem_ports_exclusive_and_typed", 0};
    PropertyResult p_halt{"halt_only_on_system_ops", 0};
    PropertyResult p_align{"control_transfer_parity", 0};
    PropertyResult p_strobe{"rd_strobe_matches_format", 0};

    const bool transfers = isBranch(op) || isJump(op);
    for (const BlockVector &v : vecs) {
        const BlockOutputs out = block.execute(v.in);
        if (out.rdWrite && out.rdAddr == 0 && out.rdData != 0)
            ++p_x0.violations;
        if (!transfers && !out.halt &&
            out.nextPc != v.in.pc + 4)
            ++p_linear.violations;
        if ((out.memRead && out.memWrite) ||
            (out.memRead && !isLoad(op)) ||
            (out.memWrite && !isStore(op)))
            ++p_ports.violations;
        if (out.halt != (op == Op::Ecall || op == Op::Ebreak))
            ++p_halt.violations;
        // Branch/jal immediates are even, so an even pc must yield an
        // even next_pc; jalr clears bit 0 by specification.
        if (transfers && (v.in.pc & 1) == 0 && (out.nextPc & 1))
            ++p_align.violations;
        if (out.rdWrite != writesRd(op))
            ++p_strobe.violations;
    }
    return {p_x0, p_linear, p_ports, p_halt, p_align, p_strobe};
}

std::vector<Mutation>
mutationCatalogue()
{
    using K = Mutation::Kind;
    std::vector<Mutation> all;
    for (unsigned bit_i : {0u, 1u, 7u, 15u, 16u, 30u, 31u}) {
        all.push_back({K::StuckSumBit, bit_i});
        all.push_back({K::CarryChainBreak, bit_i});
    }
    for (unsigned stage = 0; stage < 5; ++stage)
        all.push_back({K::DropShiftStage, stage});
    all.push_back({K::ShiftNoArith, 0});
    all.push_back({K::InvertLt, 0});
    for (unsigned byte_i = 0; byte_i < 4; ++byte_i)
        all.push_back({K::EqIgnoreByte, byte_i});
    all.push_back({K::WrongSignExt, 0});
    all.push_back({K::StoreLaneStuck, 0});
    all.push_back({K::BranchPolarity, 0});
    all.push_back({K::LinkDrop, 0});
    all.push_back({K::ImmOffByOne, 0});
    return all;
}

MutationReport
runMutationCoverage(Op op, const std::vector<BlockVector> &vecs)
{
    const InstructionBlock &block = HwLibrary::instance().block(op);
    MutationReport rpt;
    rpt.op = op;
    for (const Mutation &mut : mutationCatalogue()) {
        ++rpt.mutantsGenerated;
        // Equivalence filter (the "formal" MCY step): a mutant whose
        // outputs match the unmutated block on every vector cannot
        // matter for this op and is excluded.
        bool differs = false;
        for (const BlockVector &v : vecs) {
            const BlockOutputs a = block.execute(v.in);
            const BlockOutputs b = block.execute(v.in, &mut);
            bool d = a.nextPc != b.nextPc ||
                a.rdWrite != b.rdWrite || a.rdData != b.rdData ||
                a.memRead != b.memRead ||
                a.memWrite != b.memWrite ||
                a.memAddr != b.memAddr ||
                a.memWdata != b.memWdata ||
                a.memBytes != b.memBytes || a.halt != b.halt;
            if (!d && isLoad(op))
                d = block.extendLoadData(v.loadData) !=
                    block.extendLoadData(v.loadData, &mut);
            if (d) {
                differs = true;
                break;
            }
        }
        if (!differs) {
            ++rpt.mutantsEquivalent;
            continue;
        }
        // The testbench must fail on this mutant.
        TestbenchReport tb = runBlockTestbench(op, vecs, &mut);
        if (tb.passed())
            rpt.survivors.push_back(mut.describe());
        else
            ++rpt.mutantsKilled;
    }
    return rpt;
}

BlockCert
certifyBlock(Op op, uint64_t seed, unsigned num_random)
{
    const std::vector<BlockVector> vecs =
        blockVectors(op, seed, num_random);
    BlockCert cert;
    TestbenchReport tb = runBlockTestbench(op, vecs);
    cert.functional = tb.passed();
    cert.vectorsRun = tb.vectorsRun;

    MutationReport mc = runMutationCoverage(op, vecs);
    cert.mutationCovered = mc.fullCoverage();
    cert.mutantsKilled = mc.mutantsKilled;
    cert.mutantsTotal = mc.mutantsGenerated;

    bool properties_ok = true;
    for (const PropertyResult &p : checkBlockProperties(op, vecs))
        if (p.violations != 0)
            properties_ok = false;
    cert.formal = properties_ok;
    return cert;
}

void
certifyLibrary(HwLibrary &library, uint64_t seed, unsigned num_random)
{
    for (Op op : library.ops())
        library.certify(op, certifyBlock(op, seed, num_random));
}

} // namespace rissp
