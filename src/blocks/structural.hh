/**
 * @file
 * Structural (gate-style) datapath primitives and the mutation model.
 *
 * These functions are the C++ analogue of the SystemVerilog instruction
 * hardware blocks: adders are carry chains, shifters are barrel stages,
 * comparisons come out of the subtractor. They are deliberately written
 * at bit level and independently of the reference ISS so that
 * equivalence checking between the two is meaningful (the paper's
 * formal-verification step), and so that mutations (the MCY step) have
 * a netlist-like surface to perturb.
 */

#ifndef RISSP_BLOCKS_STRUCTURAL_HH
#define RISSP_BLOCKS_STRUCTURAL_HH

#include <cstdint>
#include <string>

namespace rissp
{

/** A netlist-level fault injected for mutation coverage (MCY analog). */
struct Mutation
{
    enum class Kind : uint8_t
    {
        None,            ///< no fault
        StuckSumBit,     ///< adder sum bit `index` stuck at 0
        CarryChainBreak, ///< carry into adder bit `index` forced 0
        DropShiftStage,  ///< barrel shifter stage `index` bypassed
        ShiftNoArith,    ///< arithmetic shift loses sign fill
        InvertLt,        ///< less-than flag inverted
        EqIgnoreByte,    ///< equality tree ignores byte `index`
        WrongSignExt,    ///< load sign-extension dropped
        StoreLaneStuck,  ///< store byte lane select stuck at lane 0
        BranchPolarity,  ///< branch taken condition inverted
        LinkDrop,        ///< jal/jalr link writes pc instead of pc+4
        ImmOffByOne,     ///< immediate wiring off by one
    };

    Kind kind = Kind::None;
    unsigned index = 0;   ///< bit/stage/byte parameter

    bool active() const { return kind != Kind::None; }
    std::string describe() const;
};

/** Carry-chain adder: returns a + b + cin, exposing the carry-out.
 *  Mutations: StuckSumBit, CarryChainBreak. */
uint32_t structAdd(uint32_t a, uint32_t b, bool cin, bool &cout,
                   const Mutation *mut = nullptr);

/** Subtract via a + ~b + 1 on the same carry chain. */
uint32_t structSub(uint32_t a, uint32_t b, bool &cout,
                   const Mutation *mut = nullptr);

/** Barrel right shift (logical or arithmetic).
 *  Mutations: DropShiftStage, ShiftNoArith. */
uint32_t structShiftRight(uint32_t value, unsigned amount, bool arith,
                          const Mutation *mut = nullptr);

/** Barrel left shift via bit-reversal around the right core. */
uint32_t structShiftLeft(uint32_t value, unsigned amount,
                         const Mutation *mut = nullptr);

/** Equality via XNOR reduce. Mutation: EqIgnoreByte. */
bool structEq(uint32_t a, uint32_t b, const Mutation *mut = nullptr);

/** Shift-add array multiplier (low 32 bits), built on the structural
 *  adder so adder mutations propagate into products. */
uint32_t structMul(uint32_t a, uint32_t b,
                   const Mutation *mut = nullptr);

/** Less-than flags derived from the subtractor's carry/sign.
 *  Mutation: InvertLt. */
bool structLt(uint32_t a, uint32_t b, bool is_signed,
              const Mutation *mut = nullptr);

/** Sub-word load lane select + extension.
 *  @param raw     little-endian bytes starting at the effective address
 *  @param bytes   1, 2 or 4
 *  @param sign_ext sign-extend when true
 *  Mutation: WrongSignExt. */
uint32_t structLoadExtend(uint32_t raw, unsigned bytes, bool sign_ext,
                          const Mutation *mut = nullptr);

} // namespace rissp

#endif // RISSP_BLOCKS_STRUCTURAL_HH
