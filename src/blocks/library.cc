#include "blocks/library.hh"

#include "util/logging.hh"

namespace rissp
{

namespace
{

using RK = ResourceKind;

std::vector<ResourceKind>
resourcesFor(Op op)
{
    switch (op) {
      case Op::Add:
      case Op::Addi:
      case Op::Sub:
        return {RK::AluAdder};
      case Op::Sll:
      case Op::Slli:
        return {RK::ShiftRight, RK::ShiftLeft};
      case Op::Srl:
      case Op::Srli:
        return {RK::ShiftRight};
      case Op::Sra:
      case Op::Srai:
        return {RK::ShiftRight, RK::ShiftArith};
      case Op::Slt:
      case Op::Slti:
      case Op::Sltu:
      case Op::Sltiu:
        return {RK::AluAdder, RK::CompareLt};
      case Op::Xor:
      case Op::Xori:
        return {RK::LogicXor};
      case Op::Or:
      case Op::Ori:
        return {RK::LogicOr};
      case Op::And:
      case Op::Andi:
        return {RK::LogicAnd};
      case Op::Lw:
        return {RK::AluAdder, RK::LoadAlign};
      case Op::Lbu:
      case Op::Lhu:
        return {RK::AluAdder, RK::LoadAlign};
      case Op::Lb:
      case Op::Lh:
        return {RK::AluAdder, RK::LoadAlign, RK::LoadSignExt};
      case Op::Sb:
      case Op::Sh:
      case Op::Sw:
        return {RK::AluAdder, RK::StoreAlign};
      case Op::Beq:
      case Op::Bne:
        return {RK::CompareEq, RK::PcAdder};
      case Op::Blt:
      case Op::Bge:
      case Op::Bltu:
      case Op::Bgeu:
        return {RK::AluAdder, RK::CompareLt, RK::PcAdder};
      case Op::Lui:
        return {RK::ImmPass};
      case Op::Auipc:
        return {RK::PcAdder};
      case Op::Cmul:
        return {RK::Multiplier};
      case Op::Jal:
        return {RK::PcAdder, RK::LinkUnit};
      case Op::Jalr:
        return {RK::AluAdder, RK::LinkUnit};
      case Op::Ecall:
      case Op::Ebreak:
        return {RK::HaltUnit};
      case Op::Invalid:
        break;
    }
    panic("resourcesFor: invalid op");
}

} // namespace

HwLibrary::HwLibrary()
{
    blocks.reserve(kNumOps);
    for (size_t i = 0; i < kNumOps; ++i) {
        const Op op = static_cast<Op>(i);
        blocks.emplace_back(op, resourcesFor(op));
    }
}

HwLibrary &
HwLibrary::instance()
{
    static HwLibrary library;
    return library;
}

const InstructionBlock &
HwLibrary::block(Op op) const
{
    if (op >= Op::Invalid)
        panic("HwLibrary::block: invalid op");
    return blocks[static_cast<size_t>(op)];
}

std::vector<Op>
HwLibrary::ops() const
{
    std::vector<Op> out;
    out.reserve(kNumOps);
    for (size_t i = 0; i < kNumOps; ++i)
        out.push_back(static_cast<Op>(i));
    return out;
}

const BlockCert &
HwLibrary::cert(Op op) const
{
    if (op >= Op::Invalid)
        panic("HwLibrary::cert: invalid op");
    return certs[static_cast<size_t>(op)];
}

void
HwLibrary::certify(Op op, const BlockCert &cert)
{
    if (op >= Op::Invalid)
        panic("HwLibrary::certify: invalid op");
    certs[static_cast<size_t>(op)] = cert;
}

bool
HwLibrary::fullyVerified() const
{
    for (const BlockCert &c : certs)
        if (!c.preVerified())
            return false;
    return true;
}

} // namespace rissp
