#include "blocks/structural.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace rissp
{

std::string
Mutation::describe() const
{
    switch (kind) {
      case Kind::None: return "none";
      case Kind::StuckSumBit:
        return strFormat("adder sum bit %u stuck at 0", index);
      case Kind::CarryChainBreak:
        return strFormat("carry into bit %u broken", index);
      case Kind::DropShiftStage:
        return strFormat("barrel stage %u bypassed", index);
      case Kind::ShiftNoArith: return "arith shift loses sign fill";
      case Kind::InvertLt: return "less-than flag inverted";
      case Kind::EqIgnoreByte:
        return strFormat("equality ignores byte %u", index);
      case Kind::WrongSignExt: return "load sign-extension dropped";
      case Kind::StoreLaneStuck: return "store lane stuck at 0";
      case Kind::BranchPolarity: return "branch polarity inverted";
      case Kind::LinkDrop: return "link value is pc, not pc+4";
      case Kind::ImmOffByOne: return "immediate off by one";
    }
    return "?";
}

uint32_t
structAdd(uint32_t a, uint32_t b, bool cin, bool &cout,
          const Mutation *mut)
{
    if (!mut) {
        // Wire-equivalent fast path: a full-adder carry chain IS
        // binary addition. The bit-level chain below remains the
        // mutation surface — any caller holding a Mutation (even an
        // inactive one) goes through it, which is how the
        // equivalence of the two paths is tested.
        const uint64_t s = static_cast<uint64_t>(a) + b + (cin ? 1 : 0);
        cout = (s >> 32) != 0;
        return static_cast<uint32_t>(s);
    }
    uint32_t sum = 0;
    uint32_t carry = cin ? 1u : 0u;
    for (unsigned i = 0; i < 32; ++i) {
        if (mut && mut->kind == Mutation::Kind::CarryChainBreak &&
            mut->index == i)
            carry = 0;
        const uint32_t ai = bit(a, i);
        const uint32_t bi = bit(b, i);
        uint32_t s = ai ^ bi ^ carry;
        if (mut && mut->kind == Mutation::Kind::StuckSumBit &&
            mut->index == i)
            s = 0;
        sum |= s << i;
        carry = (ai & bi) | (ai & carry) | (bi & carry);
    }
    cout = carry != 0;
    return sum;
}

uint32_t
structSub(uint32_t a, uint32_t b, bool &cout, const Mutation *mut)
{
    return structAdd(a, ~b, true, cout, mut);
}

uint32_t
structShiftRight(uint32_t value, unsigned amount, bool arith,
                 const Mutation *mut)
{
    amount &= 31;
    if (!mut) {
        // Wire-equivalent fast path (see structAdd): the five barrel
        // stages with sign fill compose to one arithmetic/logical
        // shift by `amount`.
        return arith
            ? static_cast<uint32_t>(
                  static_cast<int32_t>(value) >> amount)
            : value >> amount;
    }
    const uint32_t sign = arith ? bit(value, 31) : 0;
    const bool drop_arith =
        mut && mut->kind == Mutation::Kind::ShiftNoArith;
    uint32_t v = value;
    for (unsigned stage = 0; stage < 5; ++stage) {
        if (!(amount & (1u << stage)))
            continue;
        if (mut && mut->kind == Mutation::Kind::DropShiftStage &&
            mut->index == stage)
            continue;
        const unsigned dist = 1u << stage;
        uint32_t fill = (sign && !drop_arith)
            ? (~0u << (32 - dist)) : 0u;
        v = (v >> dist) | fill;
    }
    return v;
}

namespace
{

uint32_t
bitReverse(uint32_t v)
{
    uint32_t r = 0;
    for (unsigned i = 0; i < 32; ++i)
        r |= bit(v, i) << (31 - i);
    return r;
}

} // namespace

uint32_t
structShiftLeft(uint32_t value, unsigned amount, const Mutation *mut)
{
    if (!mut)
        return value << (amount & 31); // wire-equivalent fast path
    // Hardware left shift through the shared right core: reverse the
    // operand, shift right logically, reverse back.
    return bitReverse(structShiftRight(bitReverse(value), amount,
                                       false, mut));
}

uint32_t
structMul(uint32_t a, uint32_t b, const Mutation *mut)
{
    if (!mut)
        return a * b; // wire-equivalent fast path
    // Row-by-row partial-product accumulation, each row through the
    // structural carry-chain adder.
    uint32_t acc = 0;
    bool cout = false;
    for (unsigned i = 0; i < 32; ++i) {
        if (bit(b, i))
            acc = structAdd(acc, a << i, false, cout, mut);
    }
    return acc;
}

bool
structEq(uint32_t a, uint32_t b, const Mutation *mut)
{
    uint32_t diff = a ^ b;
    if (mut && mut->kind == Mutation::Kind::EqIgnoreByte &&
        mut->index < 4)
        diff &= ~(0xFFu << (8 * mut->index));
    return diff == 0;
}

bool
structLt(uint32_t a, uint32_t b, bool is_signed, const Mutation *mut)
{
    if (!mut) {
        // Wire-equivalent fast path: !carry-out of a + ~b + 1 is the
        // unsigned borrow; the overflow-corrected difference sign is
        // the signed compare.
        return is_signed
            ? static_cast<int32_t>(a) < static_cast<int32_t>(b)
            : a < b;
    }
    bool borrow_out = false;
    const uint32_t diff = structSub(a, b, borrow_out, nullptr);
    // Unsigned: borrow (carry-out == 0) means a < b.
    // Signed: overflow-corrected sign of the difference.
    bool lt;
    if (is_signed) {
        const bool sa = bit(a, 31);
        const bool sb = bit(b, 31);
        const bool sd = bit(diff, 31);
        lt = (sa && !sb) || ((sa == sb) && sd);
    } else {
        lt = !borrow_out;
    }
    if (mut && mut->kind == Mutation::Kind::InvertLt)
        lt = !lt;
    return lt;
}

uint32_t
structLoadExtend(uint32_t raw, unsigned bytes, bool sign_ext,
                 const Mutation *mut)
{
    if (mut && mut->kind == Mutation::Kind::WrongSignExt)
        sign_ext = false;
    switch (bytes) {
      case 1: {
        uint32_t v = raw & 0xFF;
        if (sign_ext && bit(v, 7))
            v |= 0xFFFFFF00u;
        return v;
      }
      case 2: {
        uint32_t v = raw & 0xFFFF;
        if (sign_ext && bit(v, 15))
            v |= 0xFFFF0000u;
        return v;
      }
      case 4:
        return raw;
      default:
        panic("structLoadExtend: bad width %u", bytes);
    }
}

} // namespace rissp
