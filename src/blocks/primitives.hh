/**
 * @file
 * Hardware primitive catalogue for the instruction block library.
 *
 * Every instruction hardware block is composed from these datapath
 * primitives. The synthesis model (src/synth) reproduces the paper's
 * "redundancy removal by synthesis tools" step by sharing primitives of
 * the same kind across all blocks in a ModularEX: a primitive kind used
 * by any number of blocks is instantiated once (§3.3: "the synthesis
 * tool will optimize the gate netlists by maximizing the resource
 * sharing if multiple instruction hardware blocks have common
 * operations among them").
 *
 * Costs are NAND2-equivalent gate counts and logic depths (in gate
 * levels) calibrated against the paper's Pragmatic 0.6 µm IGZO process
 * results (Figures 6-8): a full RV32E ModularEX lands near 3.2 kGE and
 * ~1.7 MHz. Absolute values are a model, not an EDA run; relative
 * behaviour across subsets is the reproduction target.
 */

#ifndef RISSP_BLOCKS_PRIMITIVES_HH
#define RISSP_BLOCKS_PRIMITIVES_HH

#include <cstdint>
#include <string_view>

namespace rissp
{

/** Shareable datapath resource kinds. */
enum class ResourceKind : uint8_t
{
    AluAdder,     ///< rs1 +/- operand2 adder (also address generation)
    PcAdder,      ///< pc + immediate target adder
    ShiftRight,   ///< logical-right barrel network (5 mux stages)
    ShiftArith,   ///< sign-fill extension over ShiftRight
    ShiftLeft,    ///< operand-reversal stages giving left shifts
    CompareEq,    ///< 32-bit equality tree
    CompareLt,    ///< signed/unsigned less-than flag atop AluAdder
    LogicAnd,     ///< 32-bit AND array
    LogicOr,      ///< 32-bit OR array
    LogicXor,     ///< 32-bit XOR array
    LoadAlign,    ///< load byte/half lane select
    LoadSignExt,  ///< sign/zero extension of sub-word loads
    StoreAlign,   ///< store byte-lane steering
    LinkUnit,     ///< pc+4 routing into rd for jal/jalr
    ImmPass,      ///< U-type immediate passthrough (lui)
    HaltUnit,     ///< ecall/ebreak halt strobe
    Multiplier,   ///< 32x32 low-product array (custom cmul block)
    NumKinds,
};

constexpr size_t kNumResourceKinds =
    static_cast<size_t>(ResourceKind::NumKinds);

/** Area/depth cost of one primitive instance. */
struct ResourceCost
{
    double gates;     ///< NAND2-equivalent count
    unsigned depth;   ///< logic depth contribution in gate levels
};

/** Cost table entry for @p kind. */
const ResourceCost &resourceCost(ResourceKind kind);

/** Human-readable name for reports. */
std::string_view resourceName(ResourceKind kind);

/**
 * Per-block fixed overheads that are NOT shared by synthesis: the
 * block's partial decoder (opcode/funct match), its immediate
 * extraction wiring and its leaf of the ModularEX output switch.
 */
namespace blockcost
{
/** Opcode/funct3/funct7 match logic per block. */
constexpr double kDecodeGates = 14.0;
/** ModularEX switch: per-block share of the one-hot AND-OR output
 *  network, after synthesis collapses common terms. */
constexpr double kSwitchGatesPerBlock = 26.0;
/** Decode + switch logic depth contributions (levels). */
constexpr unsigned kDecodeDepth = 3;
/** Immediate-mux wiring per format (gates). */
double immGates(uint8_t instrType);
} // namespace blockcost

} // namespace rissp

#endif // RISSP_BLOCKS_PRIMITIVES_HH
