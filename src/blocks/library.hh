/**
 * @file
 * The pre-verified full ISA hardware library (Step 0 of Figure 2).
 *
 * One instruction hardware block per RV32E instruction, with its
 * resource footprint. The verify module runs the Figure 4 flow
 * (architecture-test vectors, testbench self-check via mutations,
 * property assertions) and certifies blocks; construction of a
 * ModularEX from certified blocks then needs no further block-level
 * verification, which is the paper's central verification claim.
 */

#ifndef RISSP_BLOCKS_LIBRARY_HH
#define RISSP_BLOCKS_LIBRARY_HH

#include <array>
#include <string>
#include <vector>

#include "blocks/block.hh"

namespace rissp
{

/** Verification certificate attached to a library block. */
struct BlockCert
{
    bool functional = false;   ///< arch-test vectors passed
    bool mutationCovered = false; ///< testbench kills all mutants
    bool formal = false;       ///< property assertions hold
    unsigned vectorsRun = 0;   ///< test vectors executed
    unsigned mutantsKilled = 0;///< mutants detected
    unsigned mutantsTotal = 0; ///< mutants generated

    bool preVerified() const
    {
        return functional && mutationCovered && formal;
    }
};

/** The full ISA hardware library. */
class HwLibrary
{
  public:
    HwLibrary();

    /** Process-wide library instance (immutable block set). */
    static HwLibrary &instance();

    /** Block for @p op; panics on Op::Invalid. */
    const InstructionBlock &block(Op op) const;

    /** Every operation in the library, in Op order. */
    std::vector<Op> ops() const;

    /** Verification certificate for @p op. */
    const BlockCert &cert(Op op) const;

    /** Record a verification result (called by the verify module). */
    void certify(Op op, const BlockCert &cert);

    /** True when every block in the library is pre-verified. */
    bool fullyVerified() const;

  private:
    std::vector<InstructionBlock> blocks;
    std::array<BlockCert, kNumOps> certs{};
};

} // namespace rissp

#endif // RISSP_BLOCKS_LIBRARY_HH
