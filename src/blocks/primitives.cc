#include "blocks/primitives.hh"

#include <array>

#include "isa/op.hh"
#include "util/logging.hh"

namespace rissp
{

namespace
{

struct Entry
{
    std::string_view name;
    ResourceCost cost;
};

/**
 * Calibration notes (all NAND2-equivalents, depths in gate levels):
 *  - AluAdder: 32-bit carry-select adder with operand-2 invert for
 *    subtract; ~9.7 GE/bit.
 *  - ShiftRight: 5 stages x 32 x mux2 (~1.8 GE each).
 *  - ShiftLeft: operand reversal in/out of the right core.
 *  - CompareEq: 32 XNOR + AND reduce tree.
 *  - LoadAlign/StoreAlign: byte lane muxing for the Table 2 I/S-type
 *    DMEM interfaces.
 */
const std::array<Entry, kNumResourceKinds> kTable = {{
    {"alu_adder", {310.0, 14}},
    {"pc_adder", {300.0, 14}},
    {"shift_right", {290.0, 10}},
    {"shift_arith", {45.0, 2}},
    {"shift_left", {210.0, 4}},
    {"compare_eq", {100.0, 8}},
    {"compare_lt", {18.0, 3}},
    {"logic_and", {45.0, 2}},
    {"logic_or", {45.0, 2}},
    {"logic_xor", {55.0, 2}},
    {"load_align", {170.0, 5}},
    {"load_signext", {40.0, 2}},
    {"store_align", {95.0, 4}},
    {"link_unit", {25.0, 1}},
    {"imm_pass", {12.0, 1}},
    {"halt_unit", {8.0, 1}},
    // Carry-save array multiplier, low 32 bits only; by far the most
    // expensive primitive, which is why cmul is a deliberate opt-in.
    {"multiplier", {2750.0, 24}},
}};

} // namespace

const ResourceCost &
resourceCost(ResourceKind kind)
{
    if (kind >= ResourceKind::NumKinds)
        panic("resourceCost: bad kind %u",
              static_cast<unsigned>(kind));
    return kTable[static_cast<size_t>(kind)].cost;
}

std::string_view
resourceName(ResourceKind kind)
{
    if (kind >= ResourceKind::NumKinds)
        panic("resourceName: bad kind %u",
              static_cast<unsigned>(kind));
    return kTable[static_cast<size_t>(kind)].name;
}

namespace blockcost
{

double
immGates(uint8_t instr_type)
{
    switch (static_cast<InstrType>(instr_type)) {
      case InstrType::R: return 0.0;
      case InstrType::I: return 12.0;
      case InstrType::S: return 14.0;
      case InstrType::B: return 16.0;
      case InstrType::U: return 4.0;
      case InstrType::J: return 18.0;
      case InstrType::Sys: return 0.0;
    }
    return 0.0;
}

} // namespace blockcost

} // namespace rissp
