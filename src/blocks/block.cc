#include "blocks/block.hh"

#include <algorithm>

#include "util/bits.hh"
#include "util/logging.hh"

namespace rissp
{

InstructionBlock::InstructionBlock(Op op,
                                   std::vector<ResourceKind> resources)
    : blockOp(op), blockResources(std::move(resources))
{
}

double
InstructionBlock::ownGates() const
{
    return blockcost::kDecodeGates + blockcost::kSwitchGatesPerBlock +
        blockcost::immGates(
            static_cast<uint8_t>(opInfo(blockOp).type));
}

namespace
{

unsigned
depthOf(ResourceKind kind)
{
    return resourceCost(kind).depth;
}

} // namespace

unsigned
InstructionBlock::pathDepth() const
{
    // The critical path through a block chains resources in dataflow
    // order; independent chains (e.g. the branch-target adder vs. the
    // comparison) run in parallel and merge in the next_pc mux.
    using RK = ResourceKind;
    unsigned data = 0;
    switch (blockOp) {
      case Op::Add:
      case Op::Sub:
      case Op::Addi:
        data = depthOf(RK::AluAdder);
        break;
      case Op::Sll:
      case Op::Slli:
        data = depthOf(RK::ShiftRight) + depthOf(RK::ShiftLeft);
        break;
      case Op::Srl:
      case Op::Srli:
        data = depthOf(RK::ShiftRight);
        break;
      case Op::Sra:
      case Op::Srai:
        data = depthOf(RK::ShiftRight) + depthOf(RK::ShiftArith);
        break;
      case Op::Slt:
      case Op::Slti:
      case Op::Sltu:
      case Op::Sltiu:
        data = depthOf(RK::AluAdder) + depthOf(RK::CompareLt);
        break;
      case Op::Xor:
      case Op::Xori:
        data = depthOf(RK::LogicXor);
        break;
      case Op::Or:
      case Op::Ori:
        data = depthOf(RK::LogicOr);
        break;
      case Op::And:
      case Op::Andi:
        data = depthOf(RK::LogicAnd);
        break;
      case Op::Lw:
      case Op::Lbu:
      case Op::Lhu:
        data = depthOf(RK::AluAdder) + depthOf(RK::LoadAlign);
        break;
      case Op::Lb:
      case Op::Lh:
        data = depthOf(RK::AluAdder) + depthOf(RK::LoadAlign) +
            depthOf(RK::LoadSignExt);
        break;
      case Op::Sb:
      case Op::Sh:
      case Op::Sw:
        data = depthOf(RK::AluAdder) + depthOf(RK::StoreAlign);
        break;
      case Op::Beq:
      case Op::Bne:
        // compare and target adder in parallel, + next_pc mux
        data = std::max(depthOf(RK::CompareEq),
                        depthOf(RK::PcAdder)) + 1;
        break;
      case Op::Blt:
      case Op::Bge:
      case Op::Bltu:
      case Op::Bgeu:
        data = std::max(depthOf(RK::AluAdder) + depthOf(RK::CompareLt),
                        depthOf(RK::PcAdder)) + 1;
        break;
      case Op::Lui:
        data = depthOf(RK::ImmPass);
        break;
      case Op::Auipc:
        data = depthOf(RK::PcAdder);
        break;
      case Op::Jal:
        data = std::max(depthOf(RK::PcAdder),
                        depthOf(RK::LinkUnit)) + 1;
        break;
      case Op::Jalr:
        data = depthOf(RK::AluAdder) + depthOf(RK::LinkUnit) + 1;
        break;
      case Op::Cmul:
        data = depthOf(RK::Multiplier);
        break;
      case Op::Ecall:
      case Op::Ebreak:
        data = depthOf(RK::HaltUnit);
        break;
      case Op::Invalid:
        panic("pathDepth of invalid block");
    }
    return blockcost::kDecodeDepth + data;
}

namespace
{

/** Effective immediate, honouring the ImmOffByOne mutation. */
int32_t
effImm(const Instr &in, const Mutation *mut)
{
    int32_t imm = in.imm;
    if (mut && mut->kind == Mutation::Kind::ImmOffByOne)
        imm += 1;
    return imm;
}

uint32_t
addWire(uint32_t a, uint32_t b, const Mutation *mut)
{
    bool cout = false;
    return structAdd(a, b, false, cout, mut);
}

} // namespace

BlockOutputs
InstructionBlock::execute(const BlockInputs &in,
                          const Mutation *mut) const
{
    const Instr &insn = in.insn;
    if (insn.op != blockOp)
        panic("block %s executed with %s",
              std::string(opName(blockOp)).c_str(),
              std::string(opName(insn.op)).c_str());

    BlockOutputs out;
    const uint32_t imm = static_cast<uint32_t>(effImm(insn, mut));
    const uint32_t rs1 = in.rs1Data;
    const uint32_t rs2 = in.rs2Data;
    // Fetch provides pc+4 on a dedicated incrementer; blocks override
    // next_pc only on control transfers.
    const uint32_t pc_plus4 = in.pc + 4;
    out.nextPc = pc_plus4;

    auto write_rd = [&](uint32_t value) {
        out.rdWrite = true;
        out.rdAddr = insn.rd;
        out.rdData = insn.rd == 0 ? 0 : value;
    };
    auto branch_to = [&](bool taken) {
        if (mut && mut->kind == Mutation::Kind::BranchPolarity)
            taken = !taken;
        if (taken)
            out.nextPc = addWire(in.pc, imm, mut);
    };
    auto link_value = [&]() {
        return (mut && mut->kind == Mutation::Kind::LinkDrop)
            ? in.pc : pc_plus4;
    };
    bool cout = false;

    switch (blockOp) {
      case Op::Add: write_rd(addWire(rs1, rs2, mut)); break;
      case Op::Sub: write_rd(structSub(rs1, rs2, cout, mut)); break;
      case Op::Sll:
        write_rd(structShiftLeft(rs1, rs2 & 31, mut));
        break;
      case Op::Slt:
        write_rd(structLt(rs1, rs2, true, mut) ? 1 : 0);
        break;
      case Op::Sltu:
        write_rd(structLt(rs1, rs2, false, mut) ? 1 : 0);
        break;
      case Op::Xor: write_rd(rs1 ^ rs2); break;
      case Op::Srl:
        write_rd(structShiftRight(rs1, rs2 & 31, false, mut));
        break;
      case Op::Sra:
        write_rd(structShiftRight(rs1, rs2 & 31, true, mut));
        break;
      case Op::Or: write_rd(rs1 | rs2); break;
      case Op::And: write_rd(rs1 & rs2); break;
      case Op::Cmul: write_rd(structMul(rs1, rs2, mut)); break;

      case Op::Addi: write_rd(addWire(rs1, imm, mut)); break;
      case Op::Slti:
        write_rd(structLt(rs1, imm, true, mut) ? 1 : 0);
        break;
      case Op::Sltiu:
        write_rd(structLt(rs1, imm, false, mut) ? 1 : 0);
        break;
      case Op::Xori: write_rd(rs1 ^ imm); break;
      case Op::Ori: write_rd(rs1 | imm); break;
      case Op::Andi: write_rd(rs1 & imm); break;
      case Op::Slli:
        write_rd(structShiftLeft(rs1, imm & 31, mut));
        break;
      case Op::Srli:
        write_rd(structShiftRight(rs1, imm & 31, false, mut));
        break;
      case Op::Srai:
        write_rd(structShiftRight(rs1, imm & 31, true, mut));
        break;

      case Op::Lb:
      case Op::Lbu:
      case Op::Lh:
      case Op::Lhu:
      case Op::Lw:
        out.memRead = true;
        out.memAddr = addWire(rs1, imm, mut);
        out.memBytes = (blockOp == Op::Lw) ? 4
            : (blockOp == Op::Lh || blockOp == Op::Lhu) ? 2 : 1;
        out.memSignExtend =
            blockOp == Op::Lb || blockOp == Op::Lh;
        // rd is written once the core returns the load data through
        // extendLoadData(); flag the write port now.
        out.rdWrite = true;
        out.rdAddr = insn.rd;
        break;

      case Op::Sb:
      case Op::Sh:
      case Op::Sw: {
        out.memWrite = true;
        out.memAddr = addWire(rs1, imm, mut);
        out.memBytes = (blockOp == Op::Sw) ? 4
            : (blockOp == Op::Sh) ? 2 : 1;
        uint32_t wdata = rs2;
        if (mut && mut->kind == Mutation::Kind::StoreLaneStuck &&
            out.memBytes != 4) {
            // Lane steering stuck: data always drives lane 0 of the
            // word, so the stored value is unchanged but the address
            // collapses to the word base.
            out.memAddr &= ~3u;
        }
        out.memWdata = wdata;
        break;
      }

      case Op::Beq: branch_to(structEq(rs1, rs2, mut)); break;
      case Op::Bne: branch_to(!structEq(rs1, rs2, mut)); break;
      case Op::Blt: branch_to(structLt(rs1, rs2, true, mut)); break;
      case Op::Bge: branch_to(!structLt(rs1, rs2, true, mut)); break;
      case Op::Bltu:
        branch_to(structLt(rs1, rs2, false, mut));
        break;
      case Op::Bgeu:
        branch_to(!structLt(rs1, rs2, false, mut));
        break;

      case Op::Lui: write_rd(imm); break;
      case Op::Auipc: write_rd(addWire(in.pc, imm, mut)); break;

      case Op::Jal:
        write_rd(link_value());
        out.nextPc = addWire(in.pc, imm, mut);
        break;
      case Op::Jalr:
        write_rd(link_value());
        out.nextPc = addWire(rs1, imm, mut) & ~1u;
        break;

      case Op::Ecall:
      case Op::Ebreak:
        out.halt = true;
        break;

      case Op::Invalid:
        panic("executing invalid block");
    }
    return out;
}

uint32_t
InstructionBlock::extendLoadData(uint32_t raw, const Mutation *mut) const
{
    switch (blockOp) {
      case Op::Lb: return structLoadExtend(raw, 1, true, mut);
      case Op::Lbu: return structLoadExtend(raw, 1, false, mut);
      case Op::Lh: return structLoadExtend(raw, 2, true, mut);
      case Op::Lhu: return structLoadExtend(raw, 2, false, mut);
      case Op::Lw: return structLoadExtend(raw, 4, false, mut);
      default:
        panic("extendLoadData on non-load block %s",
              std::string(opName(blockOp)).c_str());
    }
}

} // namespace rissp
