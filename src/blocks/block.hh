/**
 * @file
 * Instruction hardware blocks and the Table 2 block interfaces.
 *
 * Each RV32E instruction is a discrete, fully-functional block with the
 * standard interfaces of the paper's Table 2: pc/insn in, next_pc out,
 * register-file read/write ports, and a DMEM port for loads/stores. A
 * block's execute() is implemented with the structural primitives of
 * structural.hh and is the hardware-facing twin of the reference ISS
 * semantics; the verify module checks the two against each other before
 * a block is admitted to the pre-verified library.
 */

#ifndef RISSP_BLOCKS_BLOCK_HH
#define RISSP_BLOCKS_BLOCK_HH

#include <vector>

#include "blocks/primitives.hh"
#include "blocks/structural.hh"
#include "isa/instr.hh"

namespace rissp
{

/** Wires into a block (Table 2 left-hand ports). */
struct BlockInputs
{
    uint32_t pc = 0;        ///< current program counter
    Instr insn;             ///< decoded instruction word
    uint32_t rs1Data = 0;   ///< register file read port 1
    uint32_t rs2Data = 0;   ///< register file read port 2
};

/** Wires out of a block (Table 2 right-hand ports). */
struct BlockOutputs
{
    uint32_t nextPc = 0;     ///< pc for the next cycle
    bool rdWrite = false;    ///< register write strobe
    uint8_t rdAddr = 0;      ///< register write address
    uint32_t rdData = 0;     ///< register write data

    bool memRead = false;    ///< DMEM read strobe
    bool memWrite = false;   ///< DMEM write strobe
    uint32_t memAddr = 0;    ///< DMEM effective address
    uint32_t memWdata = 0;   ///< DMEM write data
    uint8_t memBytes = 0;    ///< access width (1/2/4)
    bool memSignExtend = false; ///< loads: sign-extend the data

    bool halt = false;       ///< ecall/ebreak
};

/**
 * One pre-verified instruction hardware block: structural semantics
 * plus the resource footprint the synthesis model shares.
 */
class InstructionBlock
{
  public:
    InstructionBlock(Op op, std::vector<ResourceKind> resources);

    Op op() const { return blockOp; }

    /** Shareable datapath resources this block instantiates. */
    const std::vector<ResourceKind> &resources() const
    {
        return blockResources;
    }

    /** Decode + immediate + switch-leaf gates unique to this block. */
    double ownGates() const;

    /** Combinational depth through this block (levels), excluding the
     *  ModularEX switch and fetch contributions. */
    unsigned pathDepth() const;

    /**
     * Evaluate the block for one cycle.
     *
     * Loads come back in two phases, as in the hardware: execute()
     * raises memRead with the address; the core performs the access
     * and pushes the raw data through extendLoadData().
     *
     * @param in   cycle inputs; in.insn.op must equal op()
     * @param mut  optional injected fault (mutation testing)
     */
    BlockOutputs execute(const BlockInputs &in,
                         const Mutation *mut = nullptr) const;

    /** Load-path lane select + extension for this block's width. */
    uint32_t extendLoadData(uint32_t raw,
                            const Mutation *mut = nullptr) const;

  private:
    Op blockOp;
    std::vector<ResourceKind> blockResources;
};

} // namespace rissp

#endif // RISSP_BLOCKS_BLOCK_HH
