/**
 * @file
 * risspgen — command-line front end for the RISSP generation flow.
 *
 *   risspgen characterize <src.c> [-O2]     subset + codesize report
 *   risspgen run <src.c> [-O2]              execute on the generated
 *                                           RISSP (prints exit/MMIO)
 *   risspgen synth <src.c> [-O2]            synthesis + physical
 *                                           summary vs the baselines
 *   risspgen retarget <src.c> [-O2]         rewrite onto the minimal
 *                                           12-op subset and verify
 *   risspgen table3                         regenerate Table 3 for
 *                                           the bundled workloads
 *
 * Sources are MiniC (see README). A file argument of the form
 * `@name` selects a bundled workload (e.g. @armpit, @crc32).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "compiler/driver.hh"
#include "core/rissp.hh"
#include "core/subset.hh"
#include "physimpl/physical.hh"
#include "retarget/retargeter.hh"
#include "serv/serv_model.hh"
#include "sim/refsim.hh"
#include "synth/synthesis.hh"
#include "util/logging.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace rissp;

minic::OptLevel
parseLevel(int argc, char **argv, int first)
{
    for (int i = first; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "-O0") return minic::OptLevel::O0;
        if (a == "-O1") return minic::OptLevel::O1;
        if (a == "-O2") return minic::OptLevel::O2;
        if (a == "-O3") return minic::OptLevel::O3;
        if (a == "-Oz") return minic::OptLevel::Oz;
    }
    return minic::OptLevel::O2;
}

std::string
loadSource(const std::string &path)
{
    if (!path.empty() && path[0] == '@')
        return workloadByName(path.substr(1)).source;
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

int
cmdCharacterize(const std::string &src, minic::OptLevel level)
{
    minic::CompileResult cr = minic::compile(src, level);
    InstrSubset subset = InstrSubset::fromProgram(cr.program);
    std::printf("optimization   : %s\n",
                minic::optLevelName(level).c_str());
    std::printf("code size      : %zu instructions (%zu bytes)\n",
                cr.staticInstructions(), cr.program.textSize);
    std::printf("runtime helpers:");
    for (const std::string &h : cr.helpers)
        std::printf(" %s", h.c_str());
    std::printf("%s\n", cr.helpers.empty() ? " (none)" : "");
    std::printf("subset         : %zu of %zu base instructions "
                "(%.0f%%)\n", subset.size(), kFullIsaSize,
                subset.fractionOfFullIsa() * 100.0);
    std::printf("instructions   : %s\n", subset.describe().c_str());
    return 0;
}

int
cmdRun(const std::string &src, minic::OptLevel level)
{
    minic::CompileResult cr = minic::compile(src, level);
    InstrSubset subset = InstrSubset::fromProgram(cr.program);
    Rissp chip(subset, "RISSP");
    chip.reset(cr.program);
    RunResult run = chip.run(2'000'000'000ull);
    const char *why = run.reason == StopReason::Halted ? "halted"
        : run.reason == StopReason::Trapped ? "TRAPPED"
        : "step limit";
    std::printf("%s at pc=0x%x after %llu cycles, exit code %u\n",
                why, run.stopPc,
                static_cast<unsigned long long>(run.instret),
                run.exitCode);
    if (!chip.outputWords().empty()) {
        std::printf("output words  :");
        for (uint32_t w : chip.outputWords())
            std::printf(" %u", w);
        std::printf("\n");
    }
    if (!chip.outputText().empty())
        std::printf("output text   : %s\n",
                    chip.outputText().c_str());
    return run.reason == StopReason::Halted ? 0 : 1;
}

int
cmdSynth(const std::string &src, minic::OptLevel level)
{
    minic::CompileResult cr = minic::compile(src, level);
    InstrSubset subset = InstrSubset::fromProgram(cr.program);
    SynthesisModel model;
    PhysicalModel phys;
    SynthReport mine = model.synthesize(subset, "RISSP-app");
    SynthReport full =
        model.synthesize(InstrSubset::fullRv32e(), "RISSP-RV32E");
    SynthReport serv = ServModel().synthReport();
    PhysReport impl = phys.implement(mine, RfStyle::LatchArray);

    std::printf("%-14s %8s %10s %10s %10s\n", "design", "instrs",
                "fmax kHz", "area GE", "power mW");
    std::printf("%-14s %8zu %10.0f %10.0f %10.3f\n",
                mine.name.c_str(), mine.subsetSize, mine.fmaxKhz,
                mine.avgAreaGe, mine.avgPowerMw);
    std::printf("%-14s %8zu %10.0f %10.0f %10.3f\n",
                full.name.c_str(), full.subsetSize, full.fmaxKhz,
                full.avgAreaGe, full.avgPowerMw);
    std::printf("%-14s %8s %10.0f %10.0f %10.3f\n",
                serv.name.c_str(), "full", serv.fmaxKhz,
                serv.avgAreaGe, serv.avgPowerMw);
    std::printf("\nsavings vs RISSP-RV32E: area %.0f%%, power "
                "%.0f%%\n",
                (1.0 - mine.avgAreaGe / full.avgAreaGe) * 100.0,
                (1.0 - mine.avgPowerMw / full.avgPowerMw) * 100.0);
    std::printf("FlexIC at 300 kHz: %.0f x %.0f um, %.2f mm2, FF "
                "%.1f%%, %.3f mW\n", impl.dieXUm, impl.dieYUm,
                impl.dieAreaMm2, impl.ffAreaFraction * 100.0,
                impl.powerMw);
    return 0;
}

int
cmdRetarget(const std::string &src, minic::OptLevel level)
{
    minic::CompileResult cr = minic::compile(src, level);
    Retargeter rt(Retargeter::minimalSubset());
    RetargetResult res = rt.retarget(cr.program);
    if (!res.ok) {
        std::printf("retargeting failed: %s\n", res.error.c_str());
        return 1;
    }
    std::printf("macros         : %zu synthesized+verified\n",
                res.macros.size());
    std::printf("code size      : %zu -> %zu bytes (%+.1f%%)\n",
                res.initialTextBytes, res.retargetedTextBytes,
                res.codeGrowth() * 100.0);
    std::printf("distinct ops   : %zu -> %zu\n",
                res.initialSubset.size(), res.finalSubset.size());

    RefSim a;
    a.reset(cr.program);
    RefSim b;
    b.reset(res.program);
    RunResult ra = a.run(2'000'000'000ull);
    RunResult rb = b.run(2'000'000'000ull);
    const bool same = ra.reason == rb.reason &&
        ra.exitCode == rb.exitCode &&
        a.outputWords() == b.outputWords();
    std::printf("equivalence    : %s (exit %u vs %u)\n",
                same ? "verified" : "MISMATCH", ra.exitCode,
                rb.exitCode);
    return same ? 0 : 1;
}

int
cmdTable3()
{
    for (const Workload &wl : allWorkloads()) {
        minic::CompileResult cr =
            minic::compile(wl.source, minic::OptLevel::O2);
        InstrSubset subset = InstrSubset::fromProgram(cr.program);
        std::printf("%-16s (%2zu) %s\n", wl.name.c_str(),
                    subset.size(), subset.describe().c_str());
    }
    return 0;
}

void
usage()
{
    std::printf(
        "usage: risspgen <command> [args]\n"
        "  characterize <src.c|@workload> [-O0..-Oz]\n"
        "  run          <src.c|@workload> [-O0..-Oz]\n"
        "  synth        <src.c|@workload> [-O0..-Oz]\n"
        "  retarget     <src.c|@workload> [-O0..-Oz]\n"
        "  table3\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string cmd = argv[1];
    if (cmd == "table3")
        return cmdTable3();
    if (argc < 3) {
        usage();
        return 2;
    }
    const std::string src = loadSource(argv[2]);
    const minic::OptLevel level = parseLevel(argc, argv, 3);
    if (cmd == "characterize")
        return cmdCharacterize(src, level);
    if (cmd == "run")
        return cmdRun(src, level);
    if (cmd == "synth")
        return cmdSynth(src, level);
    if (cmd == "retarget")
        return cmdRetarget(src, level);
    usage();
    return 2;
}
