/**
 * @file
 * risspgen — command-line front end for the RISSP generation flow.
 *
 *   risspgen characterize <src.c> [-O2]     subset + codesize report
 *   risspgen run <src.c> [-O2]              execute on the generated
 *                                           RISSP (prints exit/MMIO)
 *   risspgen synth <src.c> [-O2]            synthesis + physical
 *                                           summary vs the baselines
 *   risspgen retarget <src.c> [-O2]         rewrite onto the minimal
 *                                           12-op subset and verify
 *   risspgen table3                         regenerate Table 3 for
 *                                           the bundled workloads
 *   risspgen techs                          list the registered
 *                                           technologies
 *
 * Every verb accepts --json: the machine-readable response from the
 * Flow API, verbatim (see flow/json.hh), instead of the human table.
 *
 * `synth` accepts --tech <spec> to cost the design on a registered
 * technology (tech/registry.hh grammar), e.g. --tech silicon-65nm or
 * --tech flexic-0.6um:voltage=2.4,ffPowerRatio=8.
 *
 * Sources are MiniC (see README). A file argument of the form
 * `@name` selects a bundled workload (e.g. @armpit, @crc32).
 *
 * This main is a thin adapter: it loads files, builds a request,
 * calls `flow::FlowService`, and formats the response. All pipeline
 * logic — and all input validation — lives behind the service, so a
 * malformed request exits with a structured error, never an abort.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "flow/flow.hh"
#include "flow/json.hh"
#include "tech/registry.hh"
#include "util/json.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace rissp;

/** Everything parsed off the command line. */
struct CliOptions
{
    std::string command;
    std::string sourceArg;
    std::string techSpec; ///< --tech value; empty = default tech
    minic::OptLevel level = minic::OptLevel::O2;
    bool json = false;
};

minic::OptLevel
parseLevel(int argc, char **argv, int first)
{
    for (int i = first; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "-O0") return minic::OptLevel::O0;
        if (a == "-O1") return minic::OptLevel::O1;
        if (a == "-O2") return minic::OptLevel::O2;
        if (a == "-O3") return minic::OptLevel::O3;
        if (a == "-Oz") return minic::OptLevel::Oz;
    }
    return minic::OptLevel::O2;
}

/** Report a failed request and pick the exit code. */
int
reportError(const Status &status, bool json)
{
    if (json)
        std::fputs(flow::toJson(status).c_str(), stdout);
    else
        std::fprintf(stderr, "risspgen: error: %s\n",
                     status.toString().c_str());
    return 1;
}

/** Resolve a CLI source argument: `@name` stays a workload
 *  reference (the service validates it); anything else is a file
 *  read here, at the edge — the service never does IO. */
Result<flow::SourceRef>
resolveSource(const std::string &arg)
{
    if (!arg.empty() && arg[0] == '@')
        return flow::SourceRef::bundled(arg.substr(1));
    std::ifstream in(arg);
    if (!in)
        return Status::errorf(ErrorCode::NotFound,
                              "cannot open '%s'", arg.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    return flow::SourceRef::inlineText(buf.str(), arg);
}

int
cmdCharacterize(const flow::FlowService &service,
                const flow::SourceRef &src, const CliOptions &cli)
{
    flow::CharacterizeRequest request;
    request.source = src;
    request.opt = cli.level;
    const flow::CharacterizeResponse response =
        service.characterize(request);
    if (!response.status.isOk())
        return reportError(response.status, cli.json);
    if (cli.json) {
        std::fputs(flow::toJson(response).c_str(), stdout);
        return 0;
    }
    const InstrSubset &subset = response.subset.subset;
    std::printf("optimization   : %s\n",
                minic::optLevelName(cli.level).c_str());
    std::printf("code size      : %zu instructions (%zu bytes)\n",
                response.compile.staticInstructions,
                response.compile.textBytes);
    std::printf("runtime helpers:");
    for (const std::string &h : response.compile.helpers)
        std::printf(" %s", h.c_str());
    std::printf("%s\n",
                response.compile.helpers.empty() ? " (none)" : "");
    std::printf("subset         : %zu of %zu base instructions "
                "(%.0f%%)\n", subset.size(), kFullIsaSize,
                subset.fractionOfFullIsa() * 100.0);
    std::printf("instructions   : %s\n", subset.describe().c_str());
    return 0;
}

int
cmdRun(const flow::FlowService &service, const flow::SourceRef &src,
       const CliOptions &cli)
{
    flow::RunRequest request;
    request.source = src;
    request.opt = cli.level;
    const flow::RunResponse response = service.run(request);
    // Trap and step-limit are valid outcomes of a valid request:
    // the exec stage ran, so report it; only a request that never
    // reached execution is an error.
    if (!response.exec.run)
        return reportError(response.status, cli.json);
    if (cli.json) {
        std::fputs(flow::toJson(response).c_str(), stdout);
        return response.exec.reason == StopReason::Halted ? 0 : 1;
    }
    const flow::ExecStage &exec = response.exec;
    const char *why = exec.reason == StopReason::Halted ? "halted"
        : exec.reason == StopReason::Trapped ? "TRAPPED"
        : "step limit";
    std::printf("%s at pc=0x%x after %llu cycles, exit code %u\n",
                why, exec.stopPc,
                static_cast<unsigned long long>(exec.cycles),
                exec.exitCode);
    if (!exec.outputWords.empty()) {
        std::printf("output words  :");
        for (uint32_t w : exec.outputWords)
            std::printf(" %u", w);
        std::printf("\n");
    }
    if (!exec.outputText.empty())
        std::printf("output text   : %s\n", exec.outputText.c_str());
    return exec.reason == StopReason::Halted ? 0 : 1;
}

int
cmdSynth(const flow::FlowService &service, const flow::SourceRef &src,
         const CliOptions &cli)
{
    flow::SynthRequest request;
    request.source = src;
    request.opt = cli.level;
    if (!cli.techSpec.empty()) {
        Result<explore::TechSpec> tech =
            explore::TechSpec::fromSpec(cli.techSpec);
        if (!tech)
            return reportError(tech.status(), cli.json);
        request.tech = tech.take();
    }
    const flow::SynthResponse response = service.synth(request);
    if (!response.status.isOk())
        return reportError(response.status, cli.json);
    if (cli.json) {
        std::fputs(flow::toJson(response).c_str(), stdout);
        return 0;
    }
    const SynthReport &mine = response.synth.app;
    const SynthReport &full = response.synth.fullIsa;
    const SynthReport &serv = response.synth.serv;
    const PhysReport &impl = response.phys.report;

    std::printf("%-14s %8s %10s %10s %10s\n", "design", "instrs",
                "fmax kHz", "area GE", "power mW");
    std::printf("%-14s %8zu %10.0f %10.0f %10.3f\n",
                mine.name.c_str(), mine.subsetSize, mine.fmaxKhz,
                mine.avgAreaGe, mine.avgPowerMw);
    std::printf("%-14s %8zu %10.0f %10.0f %10.3f\n",
                full.name.c_str(), full.subsetSize, full.fmaxKhz,
                full.avgAreaGe, full.avgPowerMw);
    std::printf("%-14s %8s %10.0f %10.0f %10.3f\n",
                serv.name.c_str(), "full", serv.fmaxKhz,
                serv.avgAreaGe, serv.avgPowerMw);
    std::printf("\nsavings vs RISSP-RV32E: area %.0f%%, power "
                "%.0f%%\n",
                (1.0 - mine.avgAreaGe / full.avgAreaGe) * 100.0,
                (1.0 - mine.avgPowerMw / full.avgPowerMw) * 100.0);
    // The paper's process keeps its familiar label; any other
    // technology is reported under its registry name.
    const std::string &tech = response.synth.tech;
    std::printf("%s at %.0f kHz: %.0f x %.0f um, %.2f mm2, FF "
                "%.1f%%, %.3f mW\n",
                tech == "flexic-0.6um" ? "FlexIC" : tech.c_str(),
                impl.implKhz, impl.dieXUm, impl.dieYUm,
                impl.dieAreaMm2, impl.ffAreaFraction * 100.0,
                impl.powerMw);
    return 0;
}

int
cmdTechs(const CliOptions &cli)
{
    const TechRegistry &registry = TechRegistry::builtins();
    if (cli.json) {
        std::printf("[\n");
        const auto &list = registry.list();
        for (size_t i = 0; i < list.size(); ++i) {
            const Technology &t = list[i];
            std::printf("  {\"name\": \"%s\", \"description\": "
                        "\"%s\", \"supply_v\": %g, "
                        "\"gate_delay_ns\": %g, "
                        "\"ff_power_ratio\": %g, "
                        "\"impl_khz\": %g}%s\n",
                        jsonEscape(t.name).c_str(),
                        jsonEscape(t.description).c_str(),
                        t.supplyVoltageV, t.gateDelayNs,
                        t.ffPowerMultiplier, t.implKhz,
                        i + 1 < list.size() ? "," : "");
        }
        std::printf("]\n");
        return 0;
    }
    std::printf("%-22s %8s %12s %8s  %s\n", "name", "supply",
                "gate delay", "FF/NAND2", "description");
    for (const Technology &t : registry.list())
        std::printf("%-22s %6.1f V %9.3f ns %7.0fx  %s\n",
                    t.name.c_str(), t.supplyVoltageV, t.gateDelayNs,
                    t.ffPowerMultiplier, t.description.c_str());
    std::printf("\nspec grammar: <name>[:key=value,...]   e.g. "
                "flexic-0.6um:voltage=2.4,ffPowerRatio=8\n");
    return 0;
}

int
cmdRetarget(const flow::FlowService &service,
            const flow::SourceRef &src, const CliOptions &cli)
{
    flow::RetargetRequest request;
    request.source = src;
    request.opt = cli.level;
    const flow::RetargetResponse response =
        service.retarget(request);
    if (!response.retarget.run)
        return reportError(response.status, cli.json);
    if (cli.json) {
        std::fputs(flow::toJson(response).c_str(), stdout);
        return response.status.isOk() ? 0 : 1;
    }
    const RetargetResult &res = response.retarget.result;
    if (!res.ok) {
        std::printf("retargeting failed: %s\n", res.error.c_str());
        return 1;
    }
    std::printf("macros         : %zu synthesized+verified\n",
                res.macros.size());
    std::printf("code size      : %zu -> %zu bytes (%+.1f%%)\n",
                res.initialTextBytes, res.retargetedTextBytes,
                res.codeGrowth() * 100.0);
    std::printf("distinct ops   : %zu -> %zu\n",
                res.initialSubset.size(), res.finalSubset.size());
    const flow::EquivalenceStage &eq = response.equivalence;
    std::printf("equivalence    : %s (exit %u vs %u)\n",
                eq.matched ? "verified" : "MISMATCH", eq.refExit,
                eq.dutExit);
    return eq.matched ? 0 : 1;
}

int
cmdTable3(const flow::FlowService &service, const CliOptions &cli)
{
    bool first = true;
    if (cli.json)
        std::printf("[\n");
    for (const Workload &wl : allWorkloads()) {
        flow::CharacterizeRequest request;
        request.source = flow::SourceRef::bundled(wl.name);
        const flow::CharacterizeResponse response =
            service.characterize(request);
        if (!response.status.isOk())
            return reportError(response.status, cli.json);
        if (cli.json) {
            std::string row = flow::toJson(response);
            row.pop_back(); // the emitter's trailing newline
            std::printf("%s%s", first ? "" : ",\n", row.c_str());
            first = false;
            continue;
        }
        const InstrSubset &subset = response.subset.subset;
        std::printf("%-16s (%2zu) %s\n", wl.name.c_str(),
                    subset.size(), subset.describe().c_str());
    }
    if (cli.json)
        std::printf("\n]\n");
    return 0;
}

void
usage()
{
    std::printf(
        "usage: risspgen <command> [args]\n"
        "  characterize <src.c|@workload> [-O0..-Oz] [--json]\n"
        "  run          <src.c|@workload> [-O0..-Oz] [--json]\n"
        "  synth        <src.c|@workload> [-O0..-Oz] [--json]\n"
        "               [--tech <name[:key=value,...]>]\n"
        "  retarget     <src.c|@workload> [-O0..-Oz] [--json]\n"
        "  table3 [--json]\n"
        "  techs  [--json]            list registered technologies\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    CliOptions cli;
    cli.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            cli.json = true;
        } else if (arg == "--tech") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "risspgen: --tech needs a value\n");
                return 2;
            }
            cli.techSpec = argv[++i];
        }
    }
    cli.level = parseLevel(argc, argv, 3);

    // Only synth costs a design on a technology; anywhere else a
    // --tech would be silently ignored, which reads as "costed on
    // the named node" to the user.
    if (!cli.techSpec.empty() && cli.command != "synth") {
        std::fprintf(stderr, "risspgen: --tech only applies to "
                             "'synth'\n");
        return 2;
    }

    const flow::FlowService service;
    if (cli.command == "techs")
        return cmdTechs(cli);
    if (cli.command == "table3")
        return cmdTable3(service, cli);
    if (argc < 3 || argv[2][0] == '-') {
        usage();
        return 2;
    }
    cli.sourceArg = argv[2];

    Result<flow::SourceRef> src = resolveSource(cli.sourceArg);
    if (!src)
        return reportError(src.status(), cli.json);

    if (cli.command == "characterize")
        return cmdCharacterize(service, src.value(), cli);
    if (cli.command == "run")
        return cmdRun(service, src.value(), cli);
    if (cli.command == "synth")
        return cmdSynth(service, src.value(), cli);
    if (cli.command == "retarget")
        return cmdRetarget(service, src.value(), cli);
    usage();
    return 2;
}
