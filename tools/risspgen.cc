/**
 * @file
 * risspgen — command-line front end for the RISSP generation flow.
 *
 *   risspgen characterize <src.c> [-O2]     subset + codesize report
 *   risspgen run <src.c> [-O2]              execute on the generated
 *                                           RISSP (prints exit/MMIO)
 *   risspgen synth <src.c> [-O2]            synthesis + physical
 *                                           summary vs the baselines
 *   risspgen retarget <src.c> [-O2]         rewrite onto the minimal
 *                                           12-op subset and verify
 *   risspgen table3                         regenerate Table 3 for
 *                                           the bundled workloads
 *   risspgen techs                          list the registered
 *                                           technologies
 *   risspgen batch <file|-> [--threads N]   serve many requests
 *                                           concurrently (one per
 *                                           line; see batch grammar
 *                                           below)
 *   risspgen serve [--port N] [--threads N] long-lived HTTP/JSON
 *            [--max-queue N] [--bind ADDR]  daemon over the Flow API
 *            [--max-connections N]          (see docs/SERVE.md)
 *            [--idle-timeout SECONDS]
 *
 * Every verb accepts --json: the machine-readable response from the
 * Flow API, verbatim (see flow/json.hh), instead of the human table.
 *
 * Batch files are line-oriented; '#' starts a comment. Each line is
 * a request in the familiar verb syntax:
 *
 *   characterize @crc32 -O1
 *   run @armpit --verify
 *   synth @crc32 --tech silicon-65nm
 *   retarget bench.c
 *   explore sweep.plan
 *
 * The whole batch is handed to `FlowService::runBatch`, which
 * decomposes every request into pipeline stages on one shared
 * work-stealing scheduler — identical in-flight work (the same
 * source compiled, the same subset swept) is computed once for the
 * whole batch. Responses print in request order with a per-request
 * status; the exit code is 0 only if every request succeeded.
 *
 * `synth` accepts --tech <spec> to cost the design on a registered
 * technology (tech/registry.hh grammar), e.g. --tech silicon-65nm or
 * --tech flexic-0.6um:voltage=2.4,ffPowerRatio=8.
 *
 * Sources are MiniC (see README). A file argument of the form
 * `@name` selects a bundled workload (e.g. @armpit, @crc32).
 *
 * This main is a thin adapter: it loads files, builds a request,
 * calls `flow::FlowService`, and formats the response. All pipeline
 * logic — and all input validation — lives behind the service, so a
 * malformed request exits with a structured error, never an abort.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "flow/flow.hh"
#include "flow/json.hh"
#include "net/server.hh"
#include "store/disk_store.hh"
#include "tech/registry.hh"
#include "util/json.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace rissp;

/** Everything parsed off the command line. */
struct CliOptions
{
    std::string command;
    std::string sourceArg;
    std::string techSpec; ///< --tech value; empty = default tech
    std::string cacheDir; ///< --cache-dir value; empty = no store
    minic::OptLevel level = minic::OptLevel::O2;
    bool json = false;
};

/** Open the persistent artifact store named by --cache-dir; a null
 *  result with an ok status means no --cache-dir was given. Unlike
 *  the in-service open (which degrades to memory-only with a
 *  warning), the CLI fails loudly — a user who typed --cache-dir
 *  wants to know it did not attach. */
Result<std::shared_ptr<store::ArtifactStore>>
openCliStore(const CliOptions &cli)
{
    if (cli.cacheDir.empty())
        return std::shared_ptr<store::ArtifactStore>();
    Result<std::shared_ptr<store::DiskStore>> opened =
        store::DiskStore::open(cli.cacheDir);
    if (!opened)
        return opened.status();
    return std::shared_ptr<store::ArtifactStore>(opened.take());
}

/** Map an `-Ox` word to its level; false when it is not one. */
bool
optLevelFromWord(const std::string &word, minic::OptLevel &out)
{
    if (word == "-O0") out = minic::OptLevel::O0;
    else if (word == "-O1") out = minic::OptLevel::O1;
    else if (word == "-O2") out = minic::OptLevel::O2;
    else if (word == "-O3") out = minic::OptLevel::O3;
    else if (word == "-Oz") out = minic::OptLevel::Oz;
    else return false;
    return true;
}

minic::OptLevel
parseLevel(int argc, char **argv, int first)
{
    minic::OptLevel level = minic::OptLevel::O2;
    for (int i = first; i < argc; ++i) {
        if (optLevelFromWord(argv[i], level))
            return level;
    }
    return level;
}

/** Parse a non-negative integer CLI value (no sign, no suffix, at
 *  most @p max); false on anything else. */
bool
parseCount(const std::string &word, unsigned long max,
           unsigned long &out)
{
    size_t used = 0;
    try {
        out = std::stoul(word, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    return !word.empty() && used == word.size() && word[0] != '-' &&
           out <= max;
}

/** Report a failed request and pick the exit code. */
int
reportError(const Status &status, bool json)
{
    if (json)
        std::fputs(flow::toJson(status).c_str(), stdout);
    else
        std::fprintf(stderr, "risspgen: error: %s\n",
                     status.toString().c_str());
    return 1;
}

/** Read a whole file (MiniC sources, batch files, plan files — all
 *  IO happens here, at the CLI edge; the service never opens
 *  paths). */
Result<std::string>
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return Status::errorf(ErrorCode::NotFound,
                              "cannot open '%s'", path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Resolve a CLI source argument: `@name` stays a workload
 *  reference (the service validates it); anything else is a file
 *  read at the edge. */
Result<flow::SourceRef>
resolveSource(const std::string &arg)
{
    if (!arg.empty() && arg[0] == '@')
        return flow::SourceRef::bundled(arg.substr(1));
    Result<std::string> text = readFile(arg);
    if (!text)
        return text.status();
    return flow::SourceRef::inlineText(text.take(), arg);
}

// Human-readable response printers, shared by the one-shot verbs
// and the batch verb; each returns the verb's exit code.

int
printCharacterize(const flow::CharacterizeResponse &response,
                  minic::OptLevel level)
{
    const InstrSubset &subset = response.subset.subset;
    std::printf("optimization   : %s\n",
                minic::optLevelName(level).c_str());
    std::printf("code size      : %zu instructions (%zu bytes)\n",
                response.compile.staticInstructions,
                response.compile.textBytes);
    std::printf("runtime helpers:");
    for (const std::string &h : response.compile.helpers)
        std::printf(" %s", h.c_str());
    std::printf("%s\n",
                response.compile.helpers.empty() ? " (none)" : "");
    std::printf("subset         : %zu of %zu base instructions "
                "(%.0f%%)\n", subset.size(), kFullIsaSize,
                subset.fractionOfFullIsa() * 100.0);
    std::printf("instructions   : %s\n", subset.describe().c_str());
    return 0;
}

int
cmdCharacterize(const flow::FlowService &service,
                const flow::SourceRef &src, const CliOptions &cli)
{
    flow::CharacterizeRequest request;
    request.source = src;
    request.opt = cli.level;
    const flow::CharacterizeResponse response =
        service.characterize(request);
    if (!response.status.isOk())
        return reportError(response.status, cli.json);
    if (cli.json) {
        std::fputs(flow::toJson(response).c_str(), stdout);
        return 0;
    }
    return printCharacterize(response, cli.level);
}

int
printRun(const flow::RunResponse &response)
{
    const flow::ExecStage &exec = response.exec;
    const char *why = exec.reason == StopReason::Halted ? "halted"
        : exec.reason == StopReason::Trapped ? "TRAPPED"
        : "step limit";
    std::printf("%s at pc=0x%x after %llu cycles, exit code %u\n",
                why, exec.stopPc,
                static_cast<unsigned long long>(exec.cycles),
                exec.exitCode);
    if (!exec.outputWords.empty()) {
        std::printf("output words  :");
        for (uint32_t w : exec.outputWords)
            std::printf(" %u", w);
        std::printf("\n");
    }
    if (!exec.outputText.empty())
        std::printf("output text   : %s\n", exec.outputText.c_str());
    return exec.reason == StopReason::Halted ? 0 : 1;
}

int
cmdRun(const flow::FlowService &service, const flow::SourceRef &src,
       const CliOptions &cli)
{
    flow::RunRequest request;
    request.source = src;
    request.opt = cli.level;
    const flow::RunResponse response = service.run(request);
    // Trap and step-limit are valid outcomes of a valid request:
    // the exec stage ran, so report it; only a request that never
    // reached execution is an error.
    if (!response.exec.run)
        return reportError(response.status, cli.json);
    if (cli.json) {
        std::fputs(flow::toJson(response).c_str(), stdout);
        return response.exec.reason == StopReason::Halted ? 0 : 1;
    }
    return printRun(response);
}

int
printSynth(const flow::SynthResponse &response)
{
    const SynthReport &mine = response.synth.app;
    const SynthReport &full = response.synth.fullIsa;
    const SynthReport &serv = response.synth.serv;
    const PhysReport &impl = response.phys.report;

    std::printf("%-14s %8s %10s %10s %10s\n", "design", "instrs",
                "fmax kHz", "area GE", "power mW");
    std::printf("%-14s %8zu %10.0f %10.0f %10.3f\n",
                mine.name.c_str(), mine.subsetSize, mine.fmaxKhz,
                mine.avgAreaGe, mine.avgPowerMw);
    std::printf("%-14s %8zu %10.0f %10.0f %10.3f\n",
                full.name.c_str(), full.subsetSize, full.fmaxKhz,
                full.avgAreaGe, full.avgPowerMw);
    std::printf("%-14s %8s %10.0f %10.0f %10.3f\n",
                serv.name.c_str(), "full", serv.fmaxKhz,
                serv.avgAreaGe, serv.avgPowerMw);
    std::printf("\nsavings vs RISSP-RV32E: area %.0f%%, power "
                "%.0f%%\n",
                (1.0 - mine.avgAreaGe / full.avgAreaGe) * 100.0,
                (1.0 - mine.avgPowerMw / full.avgPowerMw) * 100.0);
    // The paper's process keeps its familiar label; any other
    // technology is reported under its registry name.
    const std::string &tech = response.synth.tech;
    std::printf("%s at %.0f kHz: %.0f x %.0f um, %.2f mm2, FF "
                "%.1f%%, %.3f mW\n",
                tech == "flexic-0.6um" ? "FlexIC" : tech.c_str(),
                impl.implKhz, impl.dieXUm, impl.dieYUm,
                impl.dieAreaMm2, impl.ffAreaFraction * 100.0,
                impl.powerMw);
    return 0;
}

int
cmdSynth(const flow::FlowService &service, const flow::SourceRef &src,
         const CliOptions &cli)
{
    flow::SynthRequest request;
    request.source = src;
    request.opt = cli.level;
    if (!cli.techSpec.empty()) {
        Result<explore::TechSpec> tech =
            explore::TechSpec::fromSpec(cli.techSpec);
        if (!tech)
            return reportError(tech.status(), cli.json);
        request.tech = tech.take();
    }
    const flow::SynthResponse response = service.synth(request);
    if (!response.status.isOk())
        return reportError(response.status, cli.json);
    if (cli.json) {
        std::fputs(flow::toJson(response).c_str(), stdout);
        return 0;
    }
    return printSynth(response);
}

int
cmdTechs(const CliOptions &cli)
{
    const TechRegistry &registry = TechRegistry::builtins();
    if (cli.json) {
        std::printf("[\n");
        const auto &list = registry.list();
        for (size_t i = 0; i < list.size(); ++i) {
            const Technology &t = list[i];
            std::printf("  {\"name\": \"%s\", \"description\": "
                        "\"%s\", \"supply_v\": %g, "
                        "\"gate_delay_ns\": %g, "
                        "\"ff_power_ratio\": %g, "
                        "\"impl_khz\": %g}%s\n",
                        jsonEscape(t.name).c_str(),
                        jsonEscape(t.description).c_str(),
                        t.supplyVoltageV, t.gateDelayNs,
                        t.ffPowerMultiplier, t.implKhz,
                        i + 1 < list.size() ? "," : "");
        }
        std::printf("]\n");
        return 0;
    }
    std::printf("%-22s %8s %12s %8s  %s\n", "name", "supply",
                "gate delay", "FF/NAND2", "description");
    for (const Technology &t : registry.list())
        std::printf("%-22s %6.1f V %9.3f ns %7.0fx  %s\n",
                    t.name.c_str(), t.supplyVoltageV, t.gateDelayNs,
                    t.ffPowerMultiplier, t.description.c_str());
    std::printf("\nspec grammar: <name>[:key=value,...]   e.g. "
                "flexic-0.6um:voltage=2.4,ffPowerRatio=8\n");
    return 0;
}

int
printRetarget(const flow::RetargetResponse &response)
{
    const RetargetResult &res = response.retarget.result;
    if (!res.ok) {
        std::printf("retargeting failed: %s\n", res.error.c_str());
        return 1;
    }
    std::printf("macros         : %zu synthesized+verified\n",
                res.macros.size());
    std::printf("code size      : %zu -> %zu bytes (%+.1f%%)\n",
                res.initialTextBytes, res.retargetedTextBytes,
                res.codeGrowth() * 100.0);
    std::printf("distinct ops   : %zu -> %zu\n",
                res.initialSubset.size(), res.finalSubset.size());
    const flow::EquivalenceStage &eq = response.equivalence;
    std::printf("equivalence    : %s (exit %u vs %u)\n",
                eq.matched ? "verified" : "MISMATCH", eq.refExit,
                eq.dutExit);
    return eq.matched ? 0 : 1;
}

int
cmdRetarget(const flow::FlowService &service,
            const flow::SourceRef &src, const CliOptions &cli)
{
    flow::RetargetRequest request;
    request.source = src;
    request.opt = cli.level;
    const flow::RetargetResponse response =
        service.retarget(request);
    if (!response.retarget.run)
        return reportError(response.status, cli.json);
    if (cli.json) {
        std::fputs(flow::toJson(response).c_str(), stdout);
        return response.status.isOk() ? 0 : 1;
    }
    return printRetarget(response);
}

int
cmdTable3(const flow::FlowService &service, const CliOptions &cli)
{
    bool first = true;
    if (cli.json)
        std::printf("[\n");
    for (const Workload &wl : allWorkloads()) {
        flow::CharacterizeRequest request;
        request.source = flow::SourceRef::bundled(wl.name);
        const flow::CharacterizeResponse response =
            service.characterize(request);
        if (!response.status.isOk())
            return reportError(response.status, cli.json);
        if (cli.json) {
            std::string row = flow::toJson(response);
            row.pop_back(); // the emitter's trailing newline
            std::printf("%s%s", first ? "" : ",\n", row.c_str());
            first = false;
            continue;
        }
        const InstrSubset &subset = response.subset.subset;
        std::printf("%-16s (%2zu) %s\n", wl.name.c_str(),
                    subset.size(), subset.describe().c_str());
    }
    if (cli.json)
        std::printf("\n]\n");
    return 0;
}

// ---------------------------------------------------------- batch

/** One parsed batch-file line. */
struct BatchEntry
{
    int line = 0;
    std::string text; ///< the request line, verbatim, for reports
    flow::Request request;
};

/**
 * Parse one batch line: `<verb> <source> [flags...]` where source
 * is `@workload`, a MiniC file, or (for explore) a plan file. File
 * IO happens here, at the edge — the requests handed to the service
 * are self-contained.
 */
Result<flow::Request>
parseBatchLine(const std::string &line)
{
    std::istringstream in(line);
    std::vector<std::string> words;
    for (std::string word; in >> word;)
        words.push_back(word);
    if (words.size() < 2)
        return Status::error(ErrorCode::ParseError,
                             "expected '<verb> <source> [flags]'");
    const std::string &verb = words[0];
    const std::string &sourceArg = words[1];

    if (verb == "explore") {
        Result<std::string> plan = readFile(sourceArg);
        if (!plan)
            return plan.status();
        flow::ExploreRequest request;
        request.planText = plan.take();
        if (words.size() > 2)
            return Status::errorf(ErrorCode::ParseError,
                                  "unknown explore flag '%s'",
                                  words[2].c_str());
        return flow::Request(std::move(request));
    }

    Result<flow::SourceRef> source = resolveSource(sourceArg);
    if (!source)
        return source.status();

    minic::OptLevel level = minic::OptLevel::O2;
    bool verify = false;
    std::string techSpec;
    for (size_t i = 2; i < words.size(); ++i) {
        const std::string &word = words[i];
        if (optLevelFromWord(word, level))
            continue;
        if (word == "--verify" && verb == "run") {
            verify = true;
            continue;
        }
        if (word == "--tech" && verb == "synth") {
            if (i + 1 >= words.size())
                return Status::error(ErrorCode::ParseError,
                                     "--tech needs a value");
            techSpec = words[++i];
            continue;
        }
        return Status::errorf(ErrorCode::ParseError,
                              "unknown flag '%s' for '%s'",
                              word.c_str(), verb.c_str());
    }

    if (verb == "characterize") {
        flow::CharacterizeRequest request;
        request.source = source.take();
        request.opt = level;
        return flow::Request(std::move(request));
    }
    if (verb == "run") {
        flow::RunRequest request;
        request.source = source.take();
        request.opt = level;
        request.verify = verify;
        return flow::Request(std::move(request));
    }
    if (verb == "synth") {
        flow::SynthRequest request;
        request.source = source.take();
        request.opt = level;
        if (!techSpec.empty()) {
            Result<explore::TechSpec> tech =
                explore::TechSpec::fromSpec(techSpec);
            if (!tech)
                return tech.status();
            request.tech = tech.take();
        }
        return flow::Request(std::move(request));
    }
    if (verb == "retarget") {
        flow::RetargetRequest request;
        request.source = source.take();
        request.opt = level;
        return flow::Request(std::move(request));
    }
    return Status::errorf(ErrorCode::ParseError,
                          "unknown verb '%s' (characterize, run, "
                          "synth, retarget, explore)",
                          verb.c_str());
}

/** The opt level a request was parsed with (for the human report
 *  of a characterize response). */
minic::OptLevel
requestOptLevel(const flow::Request &request)
{
    if (const auto *c =
            std::get_if<flow::CharacterizeRequest>(&request))
        return c->opt;
    return minic::OptLevel::O2;
}

/** Print one batch response body (human mode); mirrors what the
 *  one-shot verbs print when their primary stage ran. */
void
printBatchBody(const flow::Request &request,
               const flow::Response &response)
{
    if (const auto *r =
            std::get_if<flow::CharacterizeResponse>(&response)) {
        if (r->status.isOk())
            printCharacterize(*r, requestOptLevel(request));
    } else if (const auto *r =
                   std::get_if<flow::RunResponse>(&response)) {
        if (r->exec.run)
            printRun(*r);
    } else if (const auto *r =
                   std::get_if<flow::SynthResponse>(&response)) {
        if (r->status.isOk())
            printSynth(*r);
    } else if (const auto *r =
                   std::get_if<flow::RetargetResponse>(&response)) {
        if (r->retarget.run)
            printRetarget(*r);
    } else if (const auto *r =
                   std::get_if<flow::ExploreResponse>(&response)) {
        if (r->status.isOk())
            std::printf("%zu points swept, %zu on the Pareto "
                        "frontier\n",
                        r->table.size(),
                        r->table.paretoFrontier().size());
    }
}

int
cmdBatch(const CliOptions &cli, const std::string &fileArg,
         unsigned threads)
{
    std::string text;
    if (fileArg == "-") {
        std::ostringstream buf;
        buf << std::cin.rdbuf();
        text = buf.str();
    } else {
        Result<std::string> file = readFile(fileArg);
        if (!file)
            return reportError(file.status(), cli.json);
        text = file.take();
    }

    // Parse every line first; like plan files, one pass reports
    // every malformed line, not just the first.
    std::vector<BatchEntry> entries;
    std::vector<std::string> errors;
    std::istringstream lines(text);
    std::string line;
    int lineNo = 0;
    while (std::getline(lines, line)) {
        ++lineNo;
        // A comment '#' must start a word, so paths containing '#'
        // (e.g. my#file.c) survive.
        for (size_t hash = line.find('#');
             hash != std::string::npos;
             hash = line.find('#', hash + 1)) {
            if (hash == 0 || line[hash - 1] == ' ' ||
                line[hash - 1] == '\t') {
                line.erase(hash);
                break;
            }
        }
        const size_t last = line.find_last_not_of(" \t\r");
        if (last == std::string::npos)
            continue; // blank or comment-only
        line.erase(last + 1);
        Result<flow::Request> request = parseBatchLine(line);
        if (!request) {
            errors.push_back(
                "batch line " + std::to_string(lineNo) + ": " +
                request.status().message());
            continue;
        }
        BatchEntry entry;
        entry.line = lineNo;
        entry.text = line;
        entry.request = request.take();
        entries.push_back(std::move(entry));
    }
    if (!errors.empty()) {
        for (const std::string &message : errors)
            std::fprintf(stderr, "risspgen: error: %s\n",
                         message.c_str());
        return 2;
    }
    if (entries.empty()) {
        std::fprintf(stderr, "risspgen: error: batch file has no "
                             "requests\n");
        return 2;
    }

    Result<std::shared_ptr<store::ArtifactStore>> artifacts =
        openCliStore(cli);
    if (!artifacts)
        return reportError(artifacts.status(), cli.json);
    flow::ServiceOptions serviceOptions;
    serviceOptions.schedulerThreads = threads;
    serviceOptions.artifacts = artifacts.take();
    const flow::FlowService service(serviceOptions);
    std::vector<flow::Request> requests;
    requests.reserve(entries.size());
    for (const BatchEntry &entry : entries)
        requests.push_back(entry.request);
    const std::vector<flow::Response> responses =
        service.runBatch(requests);

    size_t failed = 0;
    if (cli.json)
        std::printf("[\n");
    for (size_t i = 0; i < responses.size(); ++i) {
        const Status &status = flow::responseStatus(responses[i]);
        if (!status.isOk())
            ++failed;
        if (cli.json) {
            std::string row = flow::toJson(responses[i]);
            row.pop_back(); // the emitter's trailing newline
            std::printf("%s%s\n", row.c_str(),
                        i + 1 < responses.size() ? "," : "");
            continue;
        }
        std::printf("%s=== request %zu: %s\n    status: %s\n",
                    i ? "\n" : "", i + 1, entries[i].text.c_str(),
                    status.toString().c_str());
        printBatchBody(entries[i].request, responses[i]);
    }
    if (cli.json)
        std::printf("]\n");
    else
        std::printf("\n%zu/%zu requests succeeded\n",
                    responses.size() - failed, responses.size());
    return failed == 0 ? 0 : 1;
}

// ---------------------------------------------------------- cache

int
printCacheStats(const store::DiskStore &artifact_store, bool json)
{
    const store::DiskStore::Usage usage = artifact_store.usage();
    if (json) {
        std::printf("{\n  \"dir\": \"%s\",\n"
                    "  \"format_version\": %u,\n  \"kinds\": {\n",
                    jsonEscape(artifact_store.directory()).c_str(),
                    store::DiskStore::kFormatVersion);
        for (unsigned k = 0; k < store::kArtifactKindCount; ++k)
            std::printf("    \"%s\": {\"records\": %llu, "
                        "\"bytes\": %llu}%s\n",
                        store::kindName(
                            static_cast<store::ArtifactKind>(k)),
                        static_cast<unsigned long long>(
                            usage.kinds[k].records),
                        static_cast<unsigned long long>(
                            usage.kinds[k].bytes),
                        k + 1 < store::kArtifactKindCount ? ","
                                                          : "");
        std::printf(
            "  },\n  \"records\": %llu,\n  \"bytes\": %llu,\n"
            "  \"quarantine\": {\"files\": %llu, \"bytes\": "
            "%llu},\n  \"tmp_files\": %llu\n}\n",
            static_cast<unsigned long long>(usage.records),
            static_cast<unsigned long long>(usage.bytes),
            static_cast<unsigned long long>(usage.quarantineFiles),
            static_cast<unsigned long long>(usage.quarantineBytes),
            static_cast<unsigned long long>(usage.tmpFiles));
        return 0;
    }
    std::printf("store          : %s (format v%u)\n",
                artifact_store.directory().c_str(),
                store::DiskStore::kFormatVersion);
    for (unsigned k = 0; k < store::kArtifactKindCount; ++k)
        std::printf("%-15s: %llu records, %llu bytes\n",
                    store::kindName(
                        static_cast<store::ArtifactKind>(k)),
                    static_cast<unsigned long long>(
                        usage.kinds[k].records),
                    static_cast<unsigned long long>(
                        usage.kinds[k].bytes));
    std::printf("total          : %llu records, %llu bytes\n",
                static_cast<unsigned long long>(usage.records),
                static_cast<unsigned long long>(usage.bytes));
    std::printf("quarantine     : %llu files, %llu bytes\n",
                static_cast<unsigned long long>(
                    usage.quarantineFiles),
                static_cast<unsigned long long>(
                    usage.quarantineBytes));
    std::printf("tmp            : %llu files\n",
                static_cast<unsigned long long>(usage.tmpFiles));
    return 0;
}

int
printCacheGc(const store::DiskStore::GcReport &report, bool json)
{
    if (json) {
        std::printf(
            "{\n  \"scanned\": {\"records\": %llu, \"bytes\": "
            "%llu},\n  \"evicted\": {\"records\": %llu, "
            "\"bytes\": %llu},\n  \"quarantine_purged\": %llu,\n"
            "  \"tmp_purged\": %llu,\n  \"remaining\": "
            "{\"records\": %llu, \"bytes\": %llu}\n}\n",
            static_cast<unsigned long long>(report.scannedRecords),
            static_cast<unsigned long long>(report.scannedBytes),
            static_cast<unsigned long long>(report.evictedRecords),
            static_cast<unsigned long long>(report.evictedBytes),
            static_cast<unsigned long long>(
                report.quarantinePurged),
            static_cast<unsigned long long>(report.tmpPurged),
            static_cast<unsigned long long>(
                report.remainingRecords),
            static_cast<unsigned long long>(
                report.remainingBytes));
        return 0;
    }
    std::printf("scanned        : %llu records, %llu bytes\n",
                static_cast<unsigned long long>(
                    report.scannedRecords),
                static_cast<unsigned long long>(
                    report.scannedBytes));
    std::printf("evicted        : %llu records, %llu bytes\n",
                static_cast<unsigned long long>(
                    report.evictedRecords),
                static_cast<unsigned long long>(
                    report.evictedBytes));
    std::printf("purged         : %llu quarantined, %llu tmp\n",
                static_cast<unsigned long long>(
                    report.quarantinePurged),
                static_cast<unsigned long long>(report.tmpPurged));
    std::printf("remaining      : %llu records, %llu bytes\n",
                static_cast<unsigned long long>(
                    report.remainingRecords),
                static_cast<unsigned long long>(
                    report.remainingBytes));
    return 0;
}

/** `cache warm`: run the expensive pipeline stages for the named
 *  (default: all bundled) workloads against the store, so the next
 *  boot — or a sibling process — starts hot. Explore requests fill
 *  the compile/sim/synth caches, synth requests the full-report
 *  cache plus the shared baselines. */
int
cmdCacheWarm(const CliOptions &cli,
             std::shared_ptr<store::ArtifactStore> artifact_store,
             const std::vector<std::string> &names, unsigned threads)
{
    std::vector<std::string> workloads;
    if (names.empty()) {
        for (const Workload &wl : allWorkloads())
            workloads.push_back(wl.name);
    } else {
        for (const std::string &name : names)
            workloads.push_back(name[0] == '@' ? name.substr(1)
                                               : name);
    }

    const uint64_t writesBefore = artifact_store->stats().writes;
    flow::ServiceOptions serviceOptions;
    serviceOptions.schedulerThreads = threads;
    serviceOptions.artifacts = std::move(artifact_store);
    const flow::FlowService service(serviceOptions);

    std::vector<flow::Request> requests;
    for (const std::string &name : workloads) {
        flow::ExploreRequest explore;
        explore.planText = "workload " + name + "\nsubset fit = @" +
                           name + "\n";
        explore.options.threads = 1; // batch provides parallelism
        requests.push_back(std::move(explore));

        flow::SynthRequest synth;
        synth.source = flow::SourceRef::bundled(name);
        synth.name = "RISSP-" + name;
        requests.push_back(std::move(synth));
    }

    const std::vector<flow::Response> responses =
        service.runBatch(requests);
    size_t failed = 0;
    for (size_t i = 0; i < responses.size(); ++i) {
        const Status &status = flow::responseStatus(responses[i]);
        if (status.isOk())
            continue;
        ++failed;
        std::fprintf(stderr,
                     "risspgen: cache warm: request %zu (%s): %s\n",
                     i + 1, workloads[i / 2].c_str(),
                     status.toString().c_str());
    }
    const store::StoreStats after =
        service.caches()->artifacts->stats();
    if (cli.json) {
        std::printf("{\n  \"workloads\": %zu,\n  \"requests\": "
                    "%zu,\n  \"failed\": %zu,\n  \"published\": "
                    "%llu,\n  \"store_hits\": %llu\n}\n",
                    workloads.size(), responses.size(), failed,
                    static_cast<unsigned long long>(after.writes -
                                                    writesBefore),
                    static_cast<unsigned long long>(after.hits));
    } else {
        std::printf("warmed %zu workloads (%zu requests, %zu "
                    "failed): %llu records published, %llu "
                    "already hot\n",
                    workloads.size(), responses.size(), failed,
                    static_cast<unsigned long long>(after.writes -
                                                    writesBefore),
                    static_cast<unsigned long long>(after.hits));
    }
    return failed == 0 ? 0 : 1;
}

int
cmdCache(int argc, char **argv, const CliOptions &cli)
{
    if (argc < 3 || argv[2][0] == '-') {
        std::fprintf(stderr, "usage: risspgen cache "
                             "<stats|gc|warm> --cache-dir <dir> "
                             "[flags]\n");
        return 2;
    }
    const std::string sub = argv[2];

    unsigned long maxMb = 0;
    unsigned long maxAgeDays = 0;
    unsigned threads = 0;
    std::vector<std::string> names;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool hasValue = i + 1 < argc;
        unsigned long n = 0;
        if (arg == "--json") {
            continue; // parsed by the global flag loop
        } else if (arg == "--cache-dir" && hasValue) {
            ++i; // parsed by the global flag loop
        } else if (sub == "gc" && arg == "--max-mb" && hasValue &&
                   parseCount(argv[i + 1], 1'000'000'000ul, n)) {
            maxMb = n;
            ++i;
        } else if (sub == "gc" && arg == "--max-age-days" &&
                   hasValue &&
                   parseCount(argv[i + 1], 100'000ul, n)) {
            maxAgeDays = n;
            ++i;
        } else if (sub == "warm" && arg == "--threads" && hasValue &&
                   parseCount(argv[i + 1], 4096, n)) {
            threads = static_cast<unsigned>(n);
            ++i;
        } else if (sub == "warm" && arg[0] != '-') {
            names.push_back(arg);
        } else {
            std::fprintf(stderr,
                         "risspgen: bad cache %s flag or value at "
                         "'%s'\n",
                         sub.c_str(), arg.c_str());
            return 2;
        }
    }

    if (cli.cacheDir.empty()) {
        std::fprintf(stderr, "risspgen: cache %s needs "
                             "--cache-dir <dir>\n",
                     sub.c_str());
        return 2;
    }
    Result<std::shared_ptr<store::DiskStore>> opened =
        store::DiskStore::open(cli.cacheDir);
    if (!opened)
        return reportError(opened.status(), cli.json);
    std::shared_ptr<store::DiskStore> artifactStore = opened.take();

    if (sub == "stats")
        return printCacheStats(*artifactStore, cli.json);
    if (sub == "gc") {
        store::DiskStore::GcPolicy policy;
        policy.maxTotalBytes = maxMb * 1024 * 1024;
        policy.maxAgeSeconds =
            static_cast<int64_t>(maxAgeDays) * 24 * 3600;
        return printCacheGc(artifactStore->gc(policy), cli.json);
    }
    if (sub == "warm")
        return cmdCacheWarm(cli, artifactStore, names, threads);
    std::fprintf(stderr,
                 "risspgen: unknown cache subcommand '%s' "
                 "(stats, gc, warm)\n",
                 sub.c_str());
    return 2;
}

// ---------------------------------------------------------- serve

/** The running daemon, for the signal handler. The handler only
 *  calls requestShutdown(), which is one write(2) on a pre-opened
 *  pipe — async-signal-safe by construction. */
std::atomic<rissp::net::HttpServer *> g_server{nullptr};

extern "C" void
onTerminate(int)
{
    if (rissp::net::HttpServer *server =
            g_server.load(std::memory_order_acquire))
        server->requestShutdown();
}

int
cmdServe(int argc, char **argv, const CliOptions &cli)
{
    net::ServeOptions options;
    unsigned threads = 0;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool hasValue = i + 1 < argc;
        unsigned long n = 0;
        if (arg == "--port" && hasValue &&
            parseCount(argv[i + 1], 65535, n)) {
            options.port = static_cast<uint16_t>(n);
            ++i;
        } else if (arg == "--threads" && hasValue &&
                   parseCount(argv[i + 1], 4096, n)) {
            threads = static_cast<unsigned>(n);
            ++i;
        } else if (arg == "--max-queue" && hasValue &&
                   parseCount(argv[i + 1], 1'000'000, n) && n > 0) {
            options.maxQueue = static_cast<size_t>(n);
            ++i;
        } else if (arg == "--max-connections" && hasValue &&
                   parseCount(argv[i + 1], 1'000'000, n) && n > 0) {
            options.maxConnections = static_cast<size_t>(n);
            ++i;
        } else if (arg == "--idle-timeout" && hasValue &&
                   parseCount(argv[i + 1], 86'400, n)) {
            // Seconds on the CLI; 0 disables idle reaping.
            options.idleTimeoutMs = static_cast<int>(n) * 1000;
            ++i;
        } else if (arg == "--bind" && hasValue) {
            options.bindAddress = argv[++i];
        } else if (arg == "--cache-dir" && hasValue) {
            ++i; // parsed by the global flag loop
        } else {
            std::fprintf(stderr,
                         "risspgen: bad serve flag or value at "
                         "'%s'\n",
                         arg.c_str());
            return 2;
        }
    }

    Result<std::shared_ptr<store::ArtifactStore>> artifacts =
        openCliStore(cli);
    if (!artifacts) {
        std::fprintf(stderr, "risspgen: error: %s\n",
                     artifacts.status().toString().c_str());
        return 1;
    }
    flow::ServiceOptions serviceOptions;
    serviceOptions.schedulerThreads = threads;
    serviceOptions.artifacts = artifacts.take();
    const flow::FlowService service(serviceOptions);
    net::HttpServer server(service, options);
    const Status status = server.start();
    if (!status.isOk()) {
        std::fprintf(stderr, "risspgen: error: %s\n",
                     status.toString().c_str());
        return 1;
    }
    g_server.store(&server, std::memory_order_release);
    std::signal(SIGTERM, onTerminate);
    std::signal(SIGINT, onTerminate);

    std::printf("risspgen: serving on %s:%u (scheduler threads=%u, "
                "queue=%zu, connections=%zu)\n",
                options.bindAddress.c_str(), server.port(),
                service.scheduler().threadCount(),
                options.maxQueue, options.maxConnections);
    std::fflush(stdout);

    server.waitUntilStopped();
    g_server.store(nullptr, std::memory_order_release);
    std::printf("risspgen: drained, all in-flight requests "
                "completed\n");
    return 0;
}

void
usage()
{
    std::printf(
        "usage: risspgen <command> [args]\n"
        "  characterize <src.c|@workload> [-O0..-Oz] [--json]\n"
        "  run          <src.c|@workload> [-O0..-Oz] [--json]\n"
        "  synth        <src.c|@workload> [-O0..-Oz] [--json]\n"
        "               [--tech <name[:key=value,...]>]\n"
        "  retarget     <src.c|@workload> [-O0..-Oz] [--json]\n"
        "  table3 [--json]\n"
        "  techs  [--json]            list registered technologies\n"
        "  batch <file|-> [--threads N] [--json]\n"
        "         serve one request per line concurrently; lines\n"
        "         use the verb syntax above, plus 'run ... --verify'\n"
        "         and 'explore <plan-file>'\n"
        "  serve [--port N] [--bind ADDR] [--threads N]\n"
        "        [--max-queue N] [--max-connections N]\n"
        "        [--idle-timeout SECONDS]\n"
        "         long-lived HTTP/JSON daemon over the Flow API:\n"
        "         POST /api/v1/<verb>, GET /metrics, GET /healthz,\n"
        "         POST /shutdown; drains gracefully on SIGTERM\n"
        "         (endpoint + schema reference: docs/SERVE.md)\n"
        "  cache <stats|gc|warm> --cache-dir <dir> [--json]\n"
        "         inspect, garbage-collect (gc: [--max-mb N]\n"
        "         [--max-age-days N]) or pre-populate (warm:\n"
        "         [--threads N] [@workload...]) a persistent\n"
        "         artifact store (docs/CACHE.md)\n"
        "\n"
        "Every verb accepts --cache-dir <dir>: persist compile/sim/\n"
        "synth artifacts across runs in a content-addressed store\n"
        "(created on first use).\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    CliOptions cli;
    cli.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            cli.json = true;
        } else if (arg == "--tech") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "risspgen: --tech needs a value\n");
                return 2;
            }
            cli.techSpec = argv[++i];
        } else if (arg == "--cache-dir") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "risspgen: --cache-dir needs "
                                     "a value\n");
                return 2;
            }
            cli.cacheDir = argv[++i];
        }
    }
    cli.level = parseLevel(argc, argv, 3);

    // Only synth costs a design on a technology; anywhere else a
    // --tech would be silently ignored, which reads as "costed on
    // the named node" to the user.
    if (!cli.techSpec.empty() && cli.command != "synth") {
        std::fprintf(stderr, "risspgen: --tech only applies to "
                             "'synth'\n");
        return 2;
    }

    if (cli.command == "batch") {
        if (argc < 3) {
            usage();
            return 2;
        }
        unsigned threads = 0;
        for (int i = 3; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--json")
                continue; // parsed by the global flag loop above
            if (arg == "--cache-dir") {
                ++i; // value parsed by the global flag loop above
                continue;
            }
            if (arg == "--threads") {
                if (i + 1 >= argc) {
                    std::fprintf(stderr, "risspgen: --threads "
                                         "needs a value\n");
                    return 2;
                }
                const std::string word = argv[++i];
                unsigned long n = 0;
                if (!parseCount(word, 4096, n)) {
                    std::fprintf(stderr,
                                 "risspgen: bad --threads value "
                                 "'%s'\n",
                                 word.c_str());
                    return 2;
                }
                threads = static_cast<unsigned>(n);
                continue;
            }
            std::fprintf(stderr,
                         "risspgen: unknown batch flag '%s'\n",
                         arg.c_str());
            return 2;
        }
        return cmdBatch(cli, argv[2], threads);
    }
    if (cli.command == "serve")
        return cmdServe(argc, argv, cli);
    if (cli.command == "cache")
        return cmdCache(argc, argv, cli);

    Result<std::shared_ptr<store::ArtifactStore>> artifacts =
        openCliStore(cli);
    if (!artifacts)
        return reportError(artifacts.status(), cli.json);
    flow::ServiceOptions serviceOptions;
    serviceOptions.artifacts = artifacts.take();
    const flow::FlowService service(serviceOptions);
    if (cli.command == "techs")
        return cmdTechs(cli);
    if (cli.command == "table3")
        return cmdTable3(service, cli);
    if (argc < 3 || argv[2][0] == '-') {
        usage();
        return 2;
    }
    cli.sourceArg = argv[2];

    Result<flow::SourceRef> src = resolveSource(cli.sourceArg);
    if (!src)
        return reportError(src.status(), cli.json);

    if (cli.command == "characterize")
        return cmdCharacterize(service, src.value(), cli);
    if (cli.command == "run")
        return cmdRun(service, src.value(), cli);
    if (cli.command == "synth")
        return cmdSynth(service, src.value(), cli);
    if (cli.command == "retarget")
        return cmdRetarget(service, src.value(), cli);
    usage();
    return 2;
}
