/**
 * @file
 * rissp-explore — sweep a design space of (instruction subset,
 * workload, technology) points in parallel and report the Pareto
 * frontier.
 *
 *   rissp-explore <plan-file> [options]
 *   rissp-explore --demo [options]
 *
 * Options:
 *   --threads N    worker threads (overrides the plan; 1 = serial)
 *   --csv FILE     write the full result table as CSV
 *   --json FILE    write the full result table as JSON
 *   --no-verify    skip lock-step co-simulation (faster, unchecked)
 *   --physical     also run the P&R model per point
 *   --quiet        suppress the per-point table, print only summary
 *   --cache-dir D  persist compile/sim/synth artifacts in D so a
 *                  rerun of the same plan replays from disk
 *
 * The plan-file grammar is documented in explore/plan.hh; --demo runs
 * a built-in 3-subset x 3-workload cartesian plan (9 points). Results
 * are deterministic: any --threads value emits identical tables.
 *
 * A thin adapter over `flow::FlowService`: plan parsing, validation
 * and the sweep itself happen behind the service; a malformed plan
 * exits with every offending line listed, not an abort.
 */

#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>

#include "flow/flow.hh"
#include "store/disk_store.hh"
#include "util/logging.hh"

namespace
{

using namespace rissp;
using namespace rissp::explore;

const char *kDemoPlan = R"(# rissp-explore built-in demo plan
# Three candidate subsets against three workloads: does a RISSP built
# for one application run the others, and what does each point cost?
opt O2
mode cartesian
workload crc32 aha-mont64 armpit
subset RISSP-crc32  = @crc32
subset RISSP-armpit = @armpit
subset RISSP-RV32E  = @full
)";

std::string
loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open plan file '%s'", path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write '%s'", path.c_str());
    out << content;
}

void
printTable(const ResultTable &table)
{
    std::printf("%-4s %-18s %-14s %-12s %6s %9s %10s %8s %10s %9s\n",
                "#", "subset", "workload", "tech", "ops", "cosim",
                "cycles", "fmax", "area GE", "power mW");
    for (const ExplorationResult &r : table.rows()) {
        const char *verdict = !r.simRun ? "--"
            : r.trapped ? "TRAP"
            : r.cosimPassed ? "pass"
            : "FAIL";
        std::printf("%-4zu %-18s %-14s %-12s %6zu %9s %10llu "
                    "%8.0f %10.0f %9.3f\n",
                    r.index, r.subsetName.c_str(),
                    r.workloadName.c_str(), r.techName.c_str(),
                    r.subsetSize, verdict,
                    static_cast<unsigned long long>(r.cycles),
                    r.fmaxKhz, r.avgAreaGe, r.avgPowerMw);
    }
}

void
printFrontier(const ResultTable &table)
{
    const std::vector<size_t> frontier = table.paretoFrontier();
    std::printf("\nPareto frontier (min cycles, area, power): "
                "%zu of %zu points\n", frontier.size(),
                table.size());
    for (size_t i : frontier) {
        const ExplorationResult &r = table.row(i);
        std::printf("  #%-3zu %-18s x %-14s cycles=%llu "
                    "area=%.0fGE power=%.3fmW\n", r.index,
                    r.subsetName.c_str(), r.workloadName.c_str(),
                    static_cast<unsigned long long>(r.cycles),
                    r.avgAreaGe, r.avgPowerMw);
    }
}

void
usage()
{
    std::printf(
        "usage: rissp-explore <plan-file>|--demo [options]\n"
        "  --threads N   worker threads (1 = serial)\n"
        "  --csv FILE    write result table as CSV\n"
        "  --json FILE   write result table as JSON\n"
        "  --no-verify   skip lock-step co-simulation\n"
        "  --physical    run the P&R model per point\n"
        "  --quiet       only the frontier and summary\n"
        "  --cache-dir D persist stage artifacts across runs\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }

    std::string planText;
    ExplorerOptions options;
    std::string csvPath;
    std::string jsonPath;
    std::string cacheDir;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--demo")
            planText = kDemoPlan;
        else if (arg == "--threads") {
            const std::string word = value();
            size_t used = 0;
            unsigned long n = 0;
            try {
                n = std::stoul(word, &used);
            } catch (const std::exception &) {
                used = 0;
            }
            if (used != word.size() || word[0] == '-' || n > 4096)
                fatal("bad --threads value '%s'", word.c_str());
            options.threads = static_cast<unsigned>(n);
        } else if (arg == "--cache-dir")
            cacheDir = value();
        else if (arg == "--csv")
            csvPath = value();
        else if (arg == "--json")
            jsonPath = value();
        else if (arg == "--no-verify")
            options.verify = false;
        else if (arg == "--physical")
            options.physical = true;
        else if (arg == "--quiet")
            quiet = true;
        else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
            return 2;
        } else {
            planText = loadFile(arg);
        }
    }
    if (planText.empty())
        fatal("no plan given (file argument or --demo)");

    flow::ServiceOptions serviceOptions;
    if (!cacheDir.empty()) {
        // Loud failure at the CLI edge: a user who typed --cache-dir
        // wants to know the store did not attach.
        Result<std::shared_ptr<store::DiskStore>> opened =
            store::DiskStore::open(cacheDir);
        if (!opened)
            fatal("--cache-dir: %s",
                  opened.status().toString().c_str());
        serviceOptions.artifacts = opened.take();
    }
    flow::FlowService service(serviceOptions);
    flow::ExploreRequest request;
    request.planText = planText;
    request.options = options;
    const flow::ExploreResponse response = service.explore(request);
    if (!response.status.isOk()) {
        std::fprintf(stderr, "rissp-explore: error: %s\n",
                     response.status.toString().c_str());
        return 1;
    }
    const ResultTable &table = response.table;

    if (!quiet)
        printTable(table);
    printFrontier(table);

    const ExplorerStats &stats = response.stats;
    std::printf("\n%llu points | compile %llu/%llu | sim %llu/%llu | "
                "synth %llu/%llu (memo hits/lookups)\n",
                static_cast<unsigned long long>(stats.points),
                static_cast<unsigned long long>(stats.compileHits),
                static_cast<unsigned long long>(stats.compileHits +
                                                stats.compileMisses),
                static_cast<unsigned long long>(stats.simHits),
                static_cast<unsigned long long>(stats.simHits +
                                                stats.simMisses),
                static_cast<unsigned long long>(stats.synthHits),
                static_cast<unsigned long long>(stats.synthHits +
                                                stats.synthMisses));

    if (!csvPath.empty()) {
        writeFile(csvPath, table.csv());
        std::printf("wrote %s\n", csvPath.c_str());
    }
    if (!jsonPath.empty()) {
        writeFile(jsonPath, table.json());
        std::printf("wrote %s\n", jsonPath.c_str());
    }
    return 0;
}
