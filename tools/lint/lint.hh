/**
 * @file
 * rissp_lint — the in-repo project linter's check registry.
 *
 * A small token-level linter (no libclang, no external dependency)
 * for the repo invariants the compiler cannot check:
 *
 *   no-terminate   no fatal()/abort()/exit() in library code (src/)
 *                  outside the documented trusted-input panic()
 *                  implementation in util/logging.*
 *   raw-mutex      no raw std::mutex / std::condition_variable in
 *                  library code — use the capability-annotated
 *                  wrappers in util/mutex.hh so Clang's
 *                  thread-safety analysis can see the locking
 *   no-stdout      no std::cout / printf in library code (stdout
 *                  belongs to the CLIs; only tools/, bench/ and
 *                  examples/ may print)
 *   banned-call    no non-reentrant / UB-prone calls anywhere
 *                  (strcpy, sprintf, gmtime, rand, strtok, ...)
 *   hot-switch-decode
 *                  no per-instruction `switch (op)` decode in the
 *                  simulator hot paths (src/sim/, src/core/) —
 *                  instruction dispatch belongs to the shared
 *                  interpreter core (sim/exec_core.inc); RefSim's
 *                  golden-reference step() is the one exemption
 *   blocking-socket-io
 *                  no raw recv/send/accept (and friends) in
 *                  src/net/ outside net/reactor.cc — every
 *                  connection fd is owned by the reactor's
 *                  nonblocking event loop; a raw socket call
 *                  elsewhere either blocks the loop or races it
 *   include-guard  every header carries #pragma once or a matched
 *                  #ifndef/#define guard
 *
 * Each check is a pure function over one scrubbed source file
 * (comments, string and char literals blanked so tokens inside them
 * cannot trip a check) and is pinned by a good/bad fixture pair
 * under tests/lint_fixtures/ — adding a check means adding a
 * registry entry and its two fixtures (see docs/STATIC_ANALYSIS.md).
 *
 * Suppression is per-line and explicit:
 *     legacy_call();  // rissp-lint: allow(banned-call)
 * so every exception is greppable and reviewed.
 */

#ifndef RISSP_TOOLS_LINT_LINT_HH
#define RISSP_TOOLS_LINT_LINT_HH

#include <string>
#include <string_view>
#include <vector>

namespace rissp::lint
{

/** One rule violation. */
struct Finding
{
    std::string file; ///< repo-relative path
    size_t line = 0;  ///< 1-based
    std::string check;
    std::string message;
};

/**
 * One source file prepared for checking. `scrubbed` is `content`
 * with comments, string literals (including raw strings) and char
 * literals replaced by spaces, newlines preserved — so line numbers
 * agree and tokens inside literals are invisible to checks.
 * `allows[i]` holds the check names suppressed on 1-based line i+1
 * via `// rissp-lint: allow(check-a, check-b)` comments.
 */
struct SourceFile
{
    std::string path;
    std::string content;
    std::string scrubbed;
    std::vector<std::vector<std::string>> allows;

    bool allowed(size_t line, std::string_view check) const;
};

/** Prepare @p content for checking. @p path is the repo-relative
 *  path used for classification (src/ = library code) and reports. */
SourceFile makeSourceFile(std::string path, std::string content);

/** A registered check. */
struct Check
{
    const char *name;
    const char *description;
    void (*fn)(const SourceFile &file, std::vector<Finding> &out);
};

/** Every check, in reporting order. */
const std::vector<Check> &checkRegistry();

/** Run @p only_check (or all checks when empty) over one file. */
std::vector<Finding> lintFile(const SourceFile &file,
                              std::string_view only_check = {});

/**
 * Lint the repo tree rooted at @p root: every .cc/.hh/.h/.cpp/.hpp
 * under src/, tools/, bench/, examples/ and tests/, skipping
 * tests/lint_fixtures/ (the bad fixtures violate rules on purpose).
 * On an IO problem, sets @p error and returns what was gathered.
 */
std::vector<Finding> lintTree(const std::string &root,
                              std::string &error,
                              std::string_view only_check = {});

/** Path classification helpers (repo-relative, '/'-separated). */
bool isHeaderPath(std::string_view path);
bool isLibraryPath(std::string_view path); ///< under src/

} // namespace rissp::lint

#endif // RISSP_TOOLS_LINT_LINT_HH
