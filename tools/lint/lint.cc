/**
 * @file
 * rissp_lint implementation: a comment/string scrubber, a tiny
 * identifier tokenizer, and the check registry (lint.hh lists the
 * checks and the rules for adding one).
 */

#include "tools/lint/lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace rissp::lint
{

namespace
{

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

/** Parse `rissp-lint: allow(a, b)` out of one comment's text and
 *  record the names against @p line. */
void
recordAllows(const std::string &comment, size_t line,
             std::vector<std::vector<std::string>> &allows)
{
    const std::string marker = "rissp-lint:";
    size_t at = comment.find(marker);
    if (at == std::string::npos)
        return;
    at = comment.find("allow(", at + marker.size());
    if (at == std::string::npos)
        return;
    const size_t open = at + 6;
    const size_t close = comment.find(')', open);
    if (close == std::string::npos)
        return;
    if (allows.size() < line)
        allows.resize(line);
    std::string name;
    std::istringstream names(comment.substr(open, close - open));
    while (std::getline(names, name, ',')) {
        const size_t b = name.find_first_not_of(" \t");
        const size_t e = name.find_last_not_of(" \t");
        if (b != std::string::npos)
            allows[line - 1].push_back(
                name.substr(b, e - b + 1));
    }
}

/** Next non-whitespace character at or after @p pos, or '\0'. */
char
nextCode(const std::string &text, size_t pos)
{
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])))
        ++pos;
    return pos < text.size() ? text[pos] : '\0';
}

struct Token
{
    std::string_view text;
    size_t pos = 0;  ///< offset into scrubbed text
    size_t line = 0; ///< 1-based
};

/** Every identifier token in @p scrubbed, with its line. */
std::vector<Token>
tokenize(const std::string &scrubbed)
{
    std::vector<Token> tokens;
    size_t line = 1;
    for (size_t i = 0; i < scrubbed.size();) {
        const char c = scrubbed[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (isIdentStart(c)) {
            size_t end = i + 1;
            while (end < scrubbed.size() &&
                   isIdentChar(scrubbed[end]))
                ++end;
            tokens.push_back(
                {std::string_view(scrubbed).substr(i, end - i), i,
                 line});
            i = end;
            continue;
        }
        // Skip numbers wholesale so 0xAB's 'x' or 1e5's 'e' never
        // start a bogus identifier.
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t end = i + 1;
            while (end < scrubbed.size() &&
                   (isIdentChar(scrubbed[end]) ||
                    scrubbed[end] == '.'))
                ++end;
            i = end;
            continue;
        }
        ++i;
    }
    return tokens;
}

/** True when the token at @p t is a call: next code char is '('. */
bool
isCall(const SourceFile &f, const Token &t)
{
    return nextCode(f.scrubbed, t.pos + t.text.size()) == '(';
}

/** True when the token is qualified as `std::name` ending at @p t. */
bool
stdQualified(const std::vector<Token> &tokens, size_t index,
             const SourceFile &f)
{
    if (index == 0)
        return false;
    const Token &prev = tokens[index - 1];
    if (prev.text != "std")
        return false;
    // Only "::" (plus whitespace) may sit between the two tokens.
    const size_t begin = prev.pos + prev.text.size();
    const size_t end = tokens[index].pos;
    std::string between = f.scrubbed.substr(begin, end - begin);
    between.erase(std::remove_if(between.begin(), between.end(),
                                 [](unsigned char c) {
                                     return std::isspace(c);
                                 }),
                  between.end());
    return between == "::";
}

void
addFinding(std::vector<Finding> &out, const SourceFile &f,
           const Token &t, const char *check, std::string message)
{
    out.push_back({f.path, t.line, check, std::move(message)});
}

// ------------------------------------------------------ the checks

void
checkNoTerminate(const SourceFile &f, std::vector<Finding> &out)
{
    if (!isLibraryPath(f.path))
        return;
    // The documented trusted-input termination layer: panic()'s
    // abort and fatal()'s exit live here and nowhere else.
    if (f.path == "src/util/logging.cc" ||
        f.path == "src/util/logging.hh")
        return;
    static const std::string_view banned[] = {
        "fatal", "abort",     "exit",      "_exit",
        "_Exit", "quick_exit", "terminate",
    };
    const std::vector<Token> tokens = tokenize(f.scrubbed);
    for (const Token &t : tokens) {
        for (std::string_view name : banned) {
            if (t.text == name && isCall(f, t))
                addFinding(
                    out, f, t, "no-terminate",
                    "process-terminating call '" +
                        std::string(t.text) +
                        "()' in library code — return a Status "
                        "(util/status.hh); panic() is the only "
                        "sanctioned abort, for internal invariants");
        }
    }
}

void
checkRawMutex(const SourceFile &f, std::vector<Finding> &out)
{
    if (!isLibraryPath(f.path))
        return;
    // The annotated wrappers themselves are built on the raw types.
    if (f.path == "src/util/mutex.hh")
        return;
    static const std::string_view banned[] = {
        "mutex",
        "timed_mutex",
        "recursive_mutex",
        "recursive_timed_mutex",
        "shared_mutex",
        "shared_timed_mutex",
        "condition_variable",
        "condition_variable_any",
    };
    const std::vector<Token> tokens = tokenize(f.scrubbed);
    for (size_t i = 0; i < tokens.size(); ++i) {
        const Token &t = tokens[i];
        for (std::string_view name : banned) {
            if (t.text == name && stdQualified(tokens, i, f))
                addFinding(
                    out, f, t, "raw-mutex",
                    "raw std::" + std::string(t.text) +
                        " in library code carries no capability "
                        "annotation — use rissp::Mutex / CondVar "
                        "(util/mutex.hh) so -Wthread-safety can "
                        "check the locking");
        }
    }
}

void
checkNoStdout(const SourceFile &f, std::vector<Finding> &out)
{
    if (!isLibraryPath(f.path))
        return;
    const std::vector<Token> tokens = tokenize(f.scrubbed);
    for (size_t i = 0; i < tokens.size(); ++i) {
        const Token &t = tokens[i];
        const bool call =
            (t.text == "printf" || t.text == "puts" ||
             t.text == "putchar") &&
            isCall(f, t);
        const bool stream =
            t.text == "cout" && stdQualified(tokens, i, f);
        if (call || stream)
            addFinding(
                out, f, t, "no-stdout",
                "stdout write ('" + std::string(t.text) +
                    "') in library code — stdout belongs to the "
                    "CLI layer (tools/, bench/, examples/); report "
                    "through response structs or stderr warn()");
    }
}

void
checkBannedCall(const SourceFile &f, std::vector<Finding> &out)
{
    struct BannedFn
    {
        std::string_view name;
        const char *why;
    };
    static const BannedFn banned[] = {
        {"strcpy", "unbounded copy; use std::string or snprintf"},
        {"strcat", "unbounded append; use std::string"},
        {"sprintf", "unbounded format; use snprintf/strFormat"},
        {"vsprintf", "unbounded format; use vsnprintf/vstrFormat"},
        {"gets", "unbounded read; use fgets or std::getline"},
        {"strtok", "non-reentrant static state; use util/strings "
                   "split()"},
        {"gmtime", "non-reentrant static buffer; use gmtime_r"},
        {"localtime",
         "non-reentrant static buffer; use localtime_r"},
        {"asctime", "non-reentrant static buffer; use strftime"},
        {"ctime", "non-reentrant static buffer; use strftime"},
        {"strerror",
         "non-reentrant static buffer; use util/strings "
         "errnoString()"},
        {"rand", "shared hidden state; use util/rng.hh"},
        {"srand", "shared hidden state; use util/rng.hh"},
    };
    // errnoString() is the sanctioned strerror_r wrapper.
    if (f.path == "src/util/strings.cc")
        return;
    const std::vector<Token> tokens = tokenize(f.scrubbed);
    for (const Token &t : tokens) {
        for (const BannedFn &fn : banned) {
            if (t.text == fn.name && isCall(f, t))
                addFinding(out, f, t, "banned-call",
                           "banned call '" + std::string(t.text) +
                               "()': " + fn.why);
        }
    }
}

void
checkRawFsPublish(const SourceFile &f, std::vector<Finding> &out)
{
    if (!isLibraryPath(f.path))
        return;
    // The artifact store is the sanctioned publisher: its
    // write-fsync-rename sequence is the one place library code may
    // put bytes on disk.
    if (f.path.rfind("src/store/", 0) == 0)
        return;
    const std::vector<Token> tokens = tokenize(f.scrubbed);
    for (size_t i = 0; i < tokens.size(); ++i) {
        const Token &t = tokens[i];
        if (t.text == "rename" && isCall(f, t))
            addFinding(
                out, f, t, "raw-fs-publish",
                "rename() in library code outside src/store/ — "
                "publishing files belongs to the artifact store "
                "(store/disk_store.hh), whose write-fsync-rename "
                "protocol keeps crashes from leaving torn state");
        else if (t.text == "ofstream" && stdQualified(tokens, i, f))
            addFinding(
                out, f, t, "raw-fs-publish",
                "std::ofstream in library code outside src/store/ "
                "— library code must not write files directly; "
                "route persistent artifacts through the store "
                "(store/disk_store.hh) and leave ad-hoc file IO to "
                "the CLI edge (tools/, bench/)");
    }
}

void
checkHotSwitchDecode(const SourceFile &f, std::vector<Finding> &out)
{
    // Simulator hot paths (plus top-level src/ files, the shape
    // --as-library inputs and the fixtures take).
    const bool hot =
        f.path.rfind("src/sim/", 0) == 0 ||
        f.path.rfind("src/core/", 0) == 0 ||
        (isLibraryPath(f.path) &&
         f.path.find('/', 4) == std::string::npos);
    if (!hot)
        return;
    // RefSim::step() is the deliberately independent golden
    // statement of the semantics; its switch stays by design, as
    // does the shared dispatch core it cross-checks (exec_core.inc,
    // which the tree walk does not scan).
    if (f.path == "src/sim/refsim.cc")
        return;
    const std::vector<Token> tokens = tokenize(f.scrubbed);
    for (const Token &t : tokens) {
        if (t.text != "switch" || !isCall(f, t))
            continue;
        size_t open = t.pos + t.text.size();
        while (open < f.scrubbed.size() && f.scrubbed[open] != '(')
            ++open;
        size_t close = std::string::npos;
        int depth = 0;
        for (size_t j = open; j < f.scrubbed.size(); ++j) {
            if (f.scrubbed[j] == '(') {
                ++depth;
            } else if (f.scrubbed[j] == ')' && --depth == 0) {
                close = j;
                break;
            }
        }
        if (close == std::string::npos)
            continue;
        const std::string cond =
            f.scrubbed.substr(open + 1, close - open - 1);
        for (const Token &ct : tokenize(cond)) {
            if (ct.text == "op" || ct.text == "Op") {
                addFinding(
                    out, f, t, "hot-switch-decode",
                    "per-instruction switch over '" +
                        std::string(ct.text) +
                        "' in a simulator hot path — instruction "
                        "dispatch belongs to the shared interpreter "
                        "core (sim/exec_core.inc, selected via "
                        "sim/dispatch.hh), not ad-hoc decode "
                        "switches");
                break;
            }
        }
    }
}

void
checkBlockingSocketIo(const SourceFile &f, std::vector<Finding> &out)
{
    // The serving layer's single-reactor contract: every connection
    // fd is nonblocking and owned by the reactor's event loop, so
    // raw socket IO anywhere else in src/net/ is either a blocking
    // call about to stall the loop or a second owner racing it.
    // (Top-level src/ files are in scope too — the shape
    // --as-library inputs and the fixtures take.)
    const bool scoped =
        f.path.rfind("src/net/", 0) == 0 ||
        (isLibraryPath(f.path) &&
         f.path.find('/', 4) == std::string::npos);
    if (!scoped)
        return;
    // The reactor is the sanctioned owner of socket readiness and
    // the only file that may recv/send/accept.
    if (f.path == "src/net/reactor.cc")
        return;
    static const std::string_view banned[] = {
        "recv",    "send",    "accept",  "accept4",
        "recvfrom", "sendto", "recvmsg", "sendmsg",
    };
    const std::vector<Token> tokens = tokenize(f.scrubbed);
    for (const Token &t : tokens) {
        for (std::string_view name : banned) {
            if (t.text == name && isCall(f, t))
                addFinding(
                    out, f, t, "blocking-socket-io",
                    "raw socket call '" + std::string(t.text) +
                        "()' in src/net/ outside the reactor — "
                        "connection IO belongs to the nonblocking "
                        "event loop (net/reactor.cc); route bytes "
                        "through Reactor::complete() and the "
                        "request handler instead");
        }
    }
}

void
checkIncludeGuard(const SourceFile &f, std::vector<Finding> &out)
{
    if (!isHeaderPath(f.path))
        return;
    // Gather the first two preprocessor directives of the scrubbed
    // text (comments are already blank, so a license banner cannot
    // hide the guard).
    std::istringstream lines(f.scrubbed);
    std::string line;
    std::vector<std::string> directives;
    while (std::getline(lines, line) && directives.size() < 2) {
        const size_t b = line.find_first_not_of(" \t");
        if (b == std::string::npos)
            continue;
        if (line[b] != '#') {
            // Code before any guard: cannot be a guarded header.
            break;
        }
        directives.push_back(line.substr(b));
    }
    auto word = [](const std::string &directive, size_t skip) {
        std::istringstream in(directive);
        std::string w;
        for (size_t i = 0; i <= skip; ++i)
            if (!(in >> w))
                return std::string();
        return w;
    };
    if (!directives.empty()) {
        if (word(directives[0], 0) == "#pragma" &&
            word(directives[0], 1) == "once")
            return;
        if (directives.size() == 2 &&
            word(directives[0], 0) == "#ifndef" &&
            word(directives[1], 0) == "#define" &&
            !word(directives[0], 1).empty() &&
            word(directives[0], 1) == word(directives[1], 1))
            return;
    }
    out.push_back(
        {f.path, 1, "include-guard",
         "header lacks #pragma once or a matched #ifndef/#define "
         "include guard"});
}

} // namespace

// ----------------------------------------------------- public API

bool
SourceFile::allowed(size_t line, std::string_view check) const
{
    if (line == 0 || line > allows.size())
        return false;
    const std::vector<std::string> &names = allows[line - 1];
    return std::find(names.begin(), names.end(), check) !=
           names.end();
}

SourceFile
makeSourceFile(std::string path, std::string content)
{
    SourceFile f;
    f.path = std::move(path);
    f.content = std::move(content);
    f.scrubbed = f.content;
    std::string &text = f.scrubbed;

    enum class Mode
    {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
        RawString,
    };
    Mode mode = Mode::Code;
    size_t line = 1;
    std::string commentText;  // accumulates for allow() parsing
    size_t commentLine = 0;
    std::string rawDelim;     // )delim" terminator of a raw string

    auto blank = [&](size_t i) {
        if (text[i] != '\n')
            text[i] = ' ';
    };

    for (size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (mode) {
          case Mode::Code:
            if (c == '/' && next == '/') {
                mode = Mode::LineComment;
                commentText.clear();
                commentLine = line;
                blank(i);
            } else if (c == '/' && next == '*') {
                mode = Mode::BlockComment;
                commentText.clear();
                commentLine = line;
                blank(i);
            } else if (c == 'R' && next == '"' &&
                       (i == 0 || !isIdentChar(text[i - 1]))) {
                // Raw string: R"delim( ... )delim"
                size_t open = i + 2;
                std::string delim;
                while (open < text.size() && text[open] != '(' &&
                       delim.size() < 16)
                    delim += text[open++];
                rawDelim = ")" + delim + "\"";
                mode = Mode::RawString;
                blank(i);
            } else if (c == '"') {
                mode = Mode::String;
                blank(i);
            } else if (c == '\'' &&
                       (i == 0 || !isIdentChar(text[i - 1]))) {
                // Ident-adjacent quotes are digit separators
                // (1'000'000), not char literals.
                mode = Mode::Char;
                blank(i);
            }
            break;
          case Mode::LineComment:
            if (c == '\n') {
                recordAllows(commentText, commentLine, f.allows);
                mode = Mode::Code;
            } else {
                commentText += c;
                blank(i);
            }
            break;
          case Mode::BlockComment:
            if (c == '*' && next == '/') {
                recordAllows(commentText, commentLine, f.allows);
                blank(i);
                blank(i + 1);
                ++i;
                mode = Mode::Code;
            } else {
                commentText += c;
                blank(i);
            }
            break;
          case Mode::String:
            if (c == '\\' && next != '\0') {
                blank(i);
                blank(i + 1);
                if (next != '\n')
                    ++i;
            } else {
                blank(i);
                if (c == '"')
                    mode = Mode::Code;
            }
            break;
          case Mode::Char:
            if (c == '\\' && next != '\0') {
                blank(i);
                blank(i + 1);
                if (next != '\n')
                    ++i;
            } else {
                blank(i);
                if (c == '\'')
                    mode = Mode::Code;
            }
            break;
          case Mode::RawString:
            if (c == ')' &&
                text.compare(i, rawDelim.size(), rawDelim) == 0) {
                for (size_t k = 0; k < rawDelim.size(); ++k)
                    blank(i + k);
                i += rawDelim.size() - 1;
                mode = Mode::Code;
            } else {
                blank(i);
            }
            break;
        }
        if (c == '\n')
            ++line;
    }
    if (mode == Mode::LineComment)
        recordAllows(commentText, commentLine, f.allows);
    return f;
}

const std::vector<Check> &
checkRegistry()
{
    static const std::vector<Check> checks = {
        {"no-terminate",
         "no fatal()/abort()/exit() in src/ outside the documented "
         "panic() paths (util/logging.*)",
         checkNoTerminate},
        {"raw-mutex",
         "no raw std::mutex/condition_variable in src/ — use the "
         "capability-annotated wrappers in util/mutex.hh",
         checkRawMutex},
        {"no-stdout",
         "no std::cout/printf in src/ — stdout belongs to tools/, "
         "bench/ and examples/",
         checkNoStdout},
        {"banned-call",
         "no non-reentrant or UB-prone calls (strcpy, sprintf, "
         "gmtime, strerror, rand, ...) anywhere",
         checkBannedCall},
        {"raw-fs-publish",
         "no rename()/std::ofstream in src/ outside src/store/ — "
         "persistent files go through the artifact store's atomic "
         "publish protocol",
         checkRawFsPublish},
        {"hot-switch-decode",
         "no per-instruction switch-on-op decode in src/sim/ or "
         "src/core/ hot paths — dispatch lives in the shared "
         "interpreter core (sim/exec_core.inc)",
         checkHotSwitchDecode},
        {"blocking-socket-io",
         "no raw recv/send/accept in src/net/ outside the reactor — "
         "connection IO belongs to the nonblocking event loop "
         "(net/reactor.cc)",
         checkBlockingSocketIo},
        {"include-guard",
         "every header carries #pragma once or a matched "
         "#ifndef/#define guard",
         checkIncludeGuard},
    };
    return checks;
}

std::vector<Finding>
lintFile(const SourceFile &file, std::string_view only_check)
{
    std::vector<Finding> findings;
    for (const Check &check : checkRegistry()) {
        if (!only_check.empty() && only_check != check.name)
            continue;
        check.fn(file, findings);
    }
    findings.erase(
        std::remove_if(findings.begin(), findings.end(),
                       [&](const Finding &finding) {
                           return file.allowed(finding.line,
                                               finding.check);
                       }),
        findings.end());
    return findings;
}

bool
isHeaderPath(std::string_view path)
{
    auto ends = [&](std::string_view suffix) {
        return path.size() >= suffix.size() &&
               path.substr(path.size() - suffix.size()) == suffix;
    };
    return ends(".hh") || ends(".h") || ends(".hpp");
}

bool
isLibraryPath(std::string_view path)
{
    return path.rfind("src/", 0) == 0;
}

std::vector<Finding>
lintTree(const std::string &root, std::string &error,
         std::string_view only_check)
{
    namespace fs = std::filesystem;
    std::vector<Finding> findings;
    static const char *const kDirs[] = {"src", "tools", "bench",
                                        "examples", "tests"};
    static const char *const kExts[] = {".cc", ".hh", ".h", ".cpp",
                                        ".hpp"};
    std::vector<std::string> paths;
    std::error_code ec;
    for (const char *dir : kDirs) {
        const fs::path base = fs::path(root) / dir;
        if (!fs::exists(base, ec))
            continue;
        for (auto it = fs::recursive_directory_iterator(base, ec);
             it != fs::recursive_directory_iterator();
             it.increment(ec)) {
            if (ec) {
                error = "cannot walk " + base.string() + ": " +
                        ec.message();
                return findings;
            }
            // The bad fixtures violate the rules on purpose.
            if (it->is_directory() &&
                it->path().filename() == "lint_fixtures") {
                it.disable_recursion_pending();
                continue;
            }
            if (!it->is_regular_file())
                continue;
            const std::string ext = it->path().extension().string();
            if (std::find_if(std::begin(kExts), std::end(kExts),
                             [&](const char *e) {
                                 return ext == e;
                             }) == std::end(kExts))
                continue;
            paths.push_back(
                fs::relative(it->path(), root, ec)
                    .generic_string());
        }
    }
    std::sort(paths.begin(), paths.end());
    for (const std::string &path : paths) {
        std::ifstream in(fs::path(root) / path,
                         std::ios::binary);
        if (!in) {
            error = "cannot read " + path;
            return findings;
        }
        std::ostringstream content;
        content << in.rdbuf();
        const SourceFile file =
            makeSourceFile(path, content.str());
        std::vector<Finding> fileFindings =
            lintFile(file, only_check);
        findings.insert(findings.end(),
                        std::make_move_iterator(fileFindings.begin()),
                        std::make_move_iterator(fileFindings.end()));
    }
    return findings;
}

} // namespace rissp::lint
