/**
 * @file
 * rissp_lint CLI — the project linter's entry point.
 *
 * Modes:
 *   rissp_lint [--root DIR]            lint the repo tree (default
 *                                      root: the current directory)
 *   rissp_lint [--as-library] FILE...  lint explicit files;
 *                                      --as-library classifies them
 *                                      as src/ so library-only
 *                                      checks apply (how the CI
 *                                      fixture loop drives the bad
 *                                      fixtures)
 *   rissp_lint --list-checks           print the check registry
 *
 * Options:
 *   --check NAME   run only the named check
 *
 * Exit status: 0 clean, 1 findings, 2 usage or IO error. Findings
 * print one per line as `path:line: [check] message` — the format
 * editors and CI log scanners already understand.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/lint.hh"

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--root DIR] [--check NAME] [--as-library] "
        "[--list-checks] [file...]\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rissp::lint;

    std::string root = ".";
    std::string onlyCheck;
    bool asLibrary = false;
    bool listChecks = false;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--check" && i + 1 < argc) {
            onlyCheck = argv[++i];
        } else if (arg == "--as-library") {
            asLibrary = true;
        } else if (arg == "--list-checks") {
            listChecks = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            files.push_back(arg);
        }
    }

    if (listChecks) {
        for (const Check &check : checkRegistry())
            std::printf("%-14s %s\n", check.name,
                        check.description);
        return 0;
    }

    std::vector<Finding> findings;
    if (files.empty()) {
        std::string error;
        findings = lintTree(root, error, onlyCheck);
        if (!error.empty()) {
            std::fprintf(stderr, "rissp_lint: %s\n",
                         error.c_str());
            return 2;
        }
    } else {
        for (const std::string &path : files) {
            std::ifstream in(path, std::ios::binary);
            if (!in) {
                std::fprintf(stderr,
                             "rissp_lint: cannot read %s\n",
                             path.c_str());
                return 2;
            }
            std::ostringstream content;
            content << in.rdbuf();
            // --as-library reclassifies the file under src/ so the
            // library-only checks fire on fixtures kept elsewhere.
            std::string virtualPath = path;
            if (asLibrary) {
                const size_t slash = path.find_last_of('/');
                virtualPath =
                    "src/" + (slash == std::string::npos
                                  ? path
                                  : path.substr(slash + 1));
            }
            const SourceFile file =
                makeSourceFile(virtualPath, content.str());
            std::vector<Finding> fileFindings =
                lintFile(file, onlyCheck);
            findings.insert(findings.end(), fileFindings.begin(),
                            fileFindings.end());
        }
    }

    for (const Finding &finding : findings)
        std::printf("%s:%zu: [%s] %s\n", finding.file.c_str(),
                    finding.line, finding.check.c_str(),
                    finding.message.c_str());
    if (!findings.empty()) {
        std::fprintf(stderr, "rissp_lint: %zu finding%s\n",
                     findings.size(),
                     findings.size() == 1 ? "" : "s");
        return 1;
    }
    return 0;
}
