#!/bin/sh
# Tier-1 verification: configure, build, test (see ROADMAP.md).
# The ctest run includes the examples/ binaries, registered as smoke
# tests, so API examples cannot rot silently.
#
# Usage: tools/ci.sh [build-dir] [extra cmake args...]
#   tools/ci.sh                      # plain tier-1
#   tools/ci.sh build-asan -DRISSP_SANITIZE=ON   # ASan+UBSan job
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
[ "$#" -gt 0 ] && shift

cmake -B "$BUILD_DIR" -S . "$@"
cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 2)"
cd "$BUILD_DIR"
ctest --output-on-failure -j "$(nproc 2>/dev/null || echo 2)"

# Sim-throughput trajectory: emit BENCH_simspeed.json next to the
# build so CI can upload it as an artifact (docs/BENCHMARKS.md).
./bench_micro --quick --json BENCH_simspeed.json

# Serving-layer trajectory: 16 concurrent clients against a live
# daemon, p50/p95/p99 latency + throughput (docs/SERVE.md).
./bench_serve --quick --json BENCH_serve.json
