#!/bin/sh
# Tier-1 verification: configure, build, test (see ROADMAP.md).
# The ctest run includes the examples/ binaries, registered as smoke
# tests, so API examples cannot rot silently.
#
# Usage: tools/ci.sh [build-dir] [extra cmake args...]
#   tools/ci.sh                      # plain tier-1
#   tools/ci.sh build-asan -DRISSP_SANITIZE=ON   # ASan+UBSan job
#   tools/ci.sh --lint [build-dir]   # static analysis (see below)
set -eu

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

# Static-analysis mode — the shared entry point for the CI
# static-analysis job and local runs (docs/STATIC_ANALYSIS.md):
#   1. build with clang and -Werror=thread-safety when clang is
#      available (GCC compiles the annotations as no-ops, so the
#      capability analysis only bites under clang);
#   2. run rissp_lint over the tree (must be clean);
#   3. run every lint fixture: each .bad must trip its check, each
#      .good must be clean;
#   4. run clang-tidy (pinned by .clang-tidy) over src/ when
#      available.
# Steps that need missing tools are skipped with a note, never
# silently — so the script is useful in clang-less containers too.
if [ "${1:-}" = "--lint" ]; then
    shift
    BUILD_DIR="${1:-build-lint}"

    if command -v clang++ >/dev/null 2>&1; then
        cmake -B "$BUILD_DIR" -S . \
              -DCMAKE_C_COMPILER=clang \
              -DCMAKE_CXX_COMPILER=clang++ \
              -DRISSP_WERROR_THREAD_SAFETY=ON
    else
        echo "ci.sh --lint: clang++ not found;" \
             "building without thread-safety analysis" >&2
        cmake -B "$BUILD_DIR" -S .
    fi
    cmake --build "$BUILD_DIR" -j "$JOBS"

    echo "ci.sh --lint: linting the tree"
    "$BUILD_DIR/rissp_lint" --root .

    echo "ci.sh --lint: checking fixtures"
    for bad in tests/lint_fixtures/*.bad.*; do
        if "$BUILD_DIR/rissp_lint" --as-library "$bad" \
                > /dev/null 2>&1; then
            echo "ci.sh --lint: $bad produced no findings" >&2
            exit 1
        fi
    done
    for good in tests/lint_fixtures/*.good.*; do
        "$BUILD_DIR/rissp_lint" --as-library "$good"
    done

    if command -v clang-tidy >/dev/null 2>&1; then
        echo "ci.sh --lint: clang-tidy over src/"
        find src -name '*.cc' -print | sort |
            xargs clang-tidy -p "$BUILD_DIR" --quiet
    else
        echo "ci.sh --lint: clang-tidy not found; skipping" >&2
    fi

    echo "ci.sh --lint: OK"
    exit 0
fi

BUILD_DIR="${1:-build}"
[ "$#" -gt 0 ] && shift

cmake -B "$BUILD_DIR" -S . "$@"
cmake --build "$BUILD_DIR" -j "$JOBS"
cd "$BUILD_DIR"
ctest --output-on-failure -j "$JOBS"

# Sim-throughput trajectory: emit BENCH_simspeed.json next to the
# build so CI can upload it as an artifact (docs/BENCHMARKS.md).
./bench_micro --quick --json BENCH_simspeed.json

# Perf smoke on the dispatch rebuild: threaded dispatch should not be
# slower than the portable switch core. A soft gate — sanitizer and
# debug configurations legitimately flip the ratio — so it warns
# loudly instead of failing (docs/BENCHMARKS.md).
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF' || true
import json
rows = {b["name"]: b["items_per_second"]
        for b in json.load(open("BENCH_simspeed.json"))["benchmarks"]}
sw, th = rows.get("refsim_run_switch"), rows.get("refsim_run_threaded")
if sw and th:
    print("ci.sh: refsim threaded/switch ratio: %.2fx"
          " (switch %.3e, threaded %.3e instret/s)" % (th / sw, sw, th))
    if th < sw:
        print("ci.sh: WARNING: threaded dispatch is SLOWER than the"
              " switch core on this runner/configuration -- perf"
              " regression in the threaded interpreter?")
EOF
else
    echo "ci.sh: python3 not found; skipping dispatch perf smoke" >&2
fi

# Serving-layer trajectory: 16 concurrent clients against a live
# daemon, p50/p95/p99 latency + throughput (docs/SERVE.md).
./bench_serve --quick --json BENCH_serve.json

# Perf smoke on the reactor rework: 512 parked keep-alive
# connections must not tax active throughput — idle fds are event
# sources, not threads. Soft gate like the dispatch smoke above:
# warns loudly, never fails (loaded CI runners jitter req/s).
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF' || true
import json
rows = {b["name"]: b["requests_per_second"]
        for b in json.load(open("BENCH_serve.json"))["benchmarks"]}
hot, idle = rows.get("serve_characterize_hot"), \
    rows.get("idle_keepalive_512")
if hot and idle:
    print("ci.sh: idle-load/hot serve ratio: %.2fx"
          " (hot %.0f, 512-idle %.0f req/s)" % (idle / hot, hot, idle))
    if idle < 0.8 * hot:
        print("ci.sh: WARNING: 512 parked keep-alive connections"
              " cost >20%% of active req/s -- reactor scalability"
              " regression?")
EOF
else
    echo "ci.sh: python3 not found; skipping serve perf smoke" >&2
fi

# Artifact-store trajectory: warm-boot speedup and raw store
# throughput (docs/CACHE.md).
./bench_cache --quick --json BENCH_cache.json
