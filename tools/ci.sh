#!/bin/sh
# Tier-1 verification: configure, build, test (see ROADMAP.md).
# Usage: tools/ci.sh [build-dir]   (default: build)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 2)"
cd "$BUILD_DIR"
ctest --output-on-failure -j "$(nproc 2>/dev/null || echo 2)"
